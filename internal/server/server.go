// Package server is specd's HTTP front end over the speculative
// compilation pipeline: a long-running service that accepts MiniC
// compile/evaluate/sweep jobs and returns the same JSON the experiment
// engine produces on the command line.
//
// The request path is queue → context → pipeline:
//
//   - admission control: at most Workers jobs execute at once and at
//     most Queue more wait; a job beyond that is rejected with 429
//     immediately (the client should back off), and every waiting job
//     is rejected with 503 the moment the server starts draining;
//   - context: each admitted job runs under the request's context
//     bounded by the per-request Timeout, and cancellation is threaded
//     through repro's compile/evaluate entry points into internal/par's
//     fan-out and internal/cache's singleflight — a dropped client or
//     an expired deadline stops the work, it doesn't leak it;
//   - pipeline: the job body is the same code path the CLIs use
//     (experiments.RunEvalCtx and friends), so responses are
//     byte-identical to the corresponding CLI output.
//
// Observability: every request gets an id that tags its log lines and
// rides back in the X-Request-Id header; /metrics exports queue depth,
// in-flight jobs, per-phase latency histograms, the compilation cache's
// counters, and the summed speculation counters (loads retired, check
// loads, failed checks) in Prometheus text format; /healthz flips to
// 503 when draining.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/harden"
	"repro/internal/machine"
	"repro/internal/specheck"
	"repro/internal/ssapre"
	"repro/internal/workloads"
)

// Config shapes a Server. The zero value is usable: one job per core,
// a queue as deep as the worker pool, a 60-second per-request timeout.
type Config struct {
	// Workers is the maximum number of jobs executing concurrently
	// (0 = one per core). Within-job parallelism is the client's choice
	// (EvalRequest.Workers), not the server's.
	Workers int
	// Queue is the maximum number of admitted jobs waiting for a worker
	// slot (0 = Workers). Beyond Workers+Queue, jobs get 429.
	Queue int
	// Timeout bounds each job's execution (0 = 60s; negative = none).
	Timeout time.Duration
	// Logger receives the request log (nil = log.Default()).
	Logger *log.Logger
	// Adaptive enables the online tier-management runtime: evaluations
	// that name neither a config nor explicit fnTiers are served under
	// the workload's published tier assignment, their per-function
	// speculation counters feed the mis-speculation monitor, and tier
	// changes (verified by specheck before publication) show up in the
	// specd_tier_transitions_total and specd_deopt_total metrics.
	Adaptive bool
	// AdaptivePolicy tunes the monitor's windows and hysteresis; the
	// zero value uses the adaptive package defaults.
	AdaptivePolicy adaptive.Policy
}

// Server handles the specd endpoints. Create with New, serve
// s.Handler(), and call BeginDrain on shutdown.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *metrics
	log     *log.Logger

	workSlots  chan struct{} // capacity = workers: holding one = executing
	queueSlots chan struct{} // capacity = queue: holding one = waiting

	drainOnce sync.Once
	drain     chan struct{} // closed when draining begins
	reqSeq    atomic.Uint64

	// adaptiveMgrs lazily holds one tier manager per served workload
	// (workload name -> *adaptive.Manager); only populated when
	// Config.Adaptive is set.
	adaptiveMgrs sync.Map
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = cfg.Workers
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		metrics:    newMetrics(),
		log:        cfg.Logger,
		workSlots:  make(chan struct{}, cfg.Workers),
		queueSlots: make(chan struct{}, cfg.Queue),
		drain:      make(chan struct{}),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /cache/{key}", s.handleCacheGet)
	s.mux.HandleFunc("PUT /cache/{key}", s.handleCachePut)
	s.mux.HandleFunc("POST /compile", s.job("compile", s.handleCompile))
	s.mux.HandleFunc("POST /evaluate", s.job("evaluate", s.handleEvaluate))
	s.mux.HandleFunc("POST /sweep", s.job("sweep", s.handleSweep))
	s.mux.HandleFunc("POST /corpus", s.job("corpus", s.handleCorpus))
	return s
}

// Handler returns the HTTP handler serving every specd endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain starts a graceful drain: new and queued jobs are rejected
// with 503 while jobs already executing run to completion. Idempotent.
// The caller (cmd/specd) pairs it with http.Server.Shutdown, which
// stops accepting connections and waits for in-flight handlers.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		close(s.drain)
		s.log.Printf("drain: rejecting new work, finishing in-flight jobs")
	})
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"requestID"`
}

func (s *Server) writeError(w http.ResponseWriter, id string, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(errorBody{Error: err.Error(), RequestID: id})
	w.Write(append(data, '\n'))
}

// statusFor maps a job error to an HTTP status: bad input is the
// client's fault, an expired per-request deadline is 504, everything
// else — including a cancelled upstream — is reported as 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// errBadRequest marks malformed or semantically invalid request bodies.
var errBadRequest = errors.New("bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

// job wraps a handler body with the whole service contract: request id,
// draining check, admission control (429 queue-full, 503 on drain),
// per-request timeout, panic-to-500 recovery, request logging, and the
// requests_total / phase-latency metrics.
func (s *Server) job(endpoint string, body func(ctx context.Context, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		code := s.serveJob(w, r, endpoint, id, body)
		s.metrics.countRequest(endpoint, code)
		s.metrics.observePhase(endpoint, time.Since(start).Seconds())
		s.log.Printf("[%s] %s %s -> %d (%s)", id, r.Method, r.URL.Path, code, time.Since(start).Round(time.Microsecond))
	}
}

// serveJob runs one request through admission and execution and returns
// the status code it wrote.
func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, endpoint, id string, body func(ctx context.Context, r *http.Request) (any, error)) (code int) {
	if s.Draining() {
		s.writeError(w, id, http.StatusServiceUnavailable, errors.New("server is draining"))
		return http.StatusServiceUnavailable
	}

	// admission: take a worker slot if one is free; otherwise wait in
	// the bounded queue. A full queue rejects immediately — the client
	// can tell overload (429) apart from shutdown (503).
	select {
	case s.workSlots <- struct{}{}:
	default:
		select {
		case s.queueSlots <- struct{}{}:
		default:
			s.writeError(w, id, http.StatusTooManyRequests, errors.New("job queue is full"))
			return http.StatusTooManyRequests
		}
		s.metrics.queueDepth.Add(1)
		select {
		case s.workSlots <- struct{}{}:
			s.metrics.queueDepth.Add(-1)
			<-s.queueSlots
		case <-s.drain:
			s.metrics.queueDepth.Add(-1)
			<-s.queueSlots
			s.writeError(w, id, http.StatusServiceUnavailable, errors.New("server is draining"))
			return http.StatusServiceUnavailable
		case <-r.Context().Done():
			s.metrics.queueDepth.Add(-1)
			<-s.queueSlots
			s.writeError(w, id, http.StatusServiceUnavailable, fmt.Errorf("cancelled while queued: %w", r.Context().Err()))
			return http.StatusServiceUnavailable
		}
	}
	defer func() { <-s.workSlots }()

	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)

	ctx := r.Context()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}

	result, err := s.runBody(ctx, id, r, body)
	if err != nil {
		code = statusFor(err)
		s.writeError(w, id, code, err)
		return code
	}
	w.Header().Set("Content-Type", "application/json")
	var data []byte
	switch v := result.(type) {
	case []byte: // pre-rendered (the byte-identical /evaluate path)
		data = v
	default:
		data, err = json.MarshalIndent(result, "", "  ")
		if err != nil {
			code = http.StatusInternalServerError
			s.writeError(w, id, code, err)
			return code
		}
		data = append(data, '\n')
	}
	w.WriteHeader(http.StatusOK)
	w.Write(data)
	return http.StatusOK
}

// runBody executes the handler body with panic containment: a panicking
// job produces a 500 for that request and a stack trace in the log, not
// a dead process.
func (s *Server) runBody(ctx context.Context, id string, r *http.Request, body func(ctx context.Context, r *http.Request) (any, error)) (result any, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.log.Printf("[%s] panic: %v\n%s", id, p, debug.Stack())
			result, err = nil, fmt.Errorf("internal error: job panicked: %v", p)
		}
	}()
	return body(ctx, r)
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("decoding body: %v", err)
	}
	return nil
}

// --- endpoints ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(experiments.ListWorkloads(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}

// countSpecheck records a verify-enabled compilation's outcome in the
// specheck metrics: a clean pass increments verified, a *specheck.Error
// adds its violation count. Call only when verification actually ran.
func (s *Server) countSpecheck(err error) {
	if err == nil {
		s.metrics.specheckVerified.Add(1)
		return
	}
	var se *specheck.Error
	if errors.As(err, &se) {
		s.metrics.specheckViolations.Add(int64(len(se.Violations)))
	}
}

// countHarden folds one hardened build's report into the leak and fence
// counters. A nil report (no hardening requested) is a no-op.
func (s *Server) countHarden(rep *harden.Report) {
	if rep == nil {
		return
	}
	s.metrics.leaksFound.Add(int64(rep.LeaksFound))
	s.metrics.fencesInserted.Add(int64(rep.FencesInserted))
}

// CompileRequest is POST /compile's body: raw MiniC source plus an
// optional build config. Verify runs the per-pass speculation-soundness
// checker during the build (also reachable as config.VerifyPasses); a
// violation fails the request and shows up in the
// specd_specheck_violations_total counter. Harden runs the
// speculative-leak mitigation pass ("fence" or "hoist", also reachable
// as config.Harden); leaks found and fences inserted land in the
// specd_leaks_found_total / specd_fences_inserted_total counters.
type CompileRequest struct {
	Source  string        `json:"source"`
	Config  *repro.Config `json:"config,omitempty"`
	Workers int           `json:"workers,omitempty"`
	Verify  bool          `json:"verify,omitempty"`
	Harden  string        `json:"harden,omitempty"`
}

// CompileResponse reports what the pipeline did: per-build optimizer
// statistic totals, the hardening report when a policy was requested,
// and the profiling failure, if any (compilation still succeeds under
// the static-estimate fallback; the caller decides whether that is
// fatal).
type CompileResponse struct {
	Functions  int            `json:"functions"`
	Stats      ssapre.Stats   `json:"stats"`
	Harden     *harden.Report `json:"harden,omitempty"`
	ProfileErr string         `json:"profileErr,omitempty"`
}

func (s *Server) handleCompile(ctx context.Context, r *http.Request) (any, error) {
	var req CompileRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Source == "" {
		return nil, badRequestf("empty source")
	}
	cfg := repro.Config{Spec: repro.SpecProfile}
	if req.Config != nil {
		cfg = *req.Config
	}
	cfg.Workers = req.Workers
	if req.Verify {
		cfg.VerifyPasses = true
	}
	if req.Harden != "" {
		if _, err := harden.ParsePolicy(req.Harden); err != nil {
			return nil, badRequestf("%v", err)
		}
		cfg.Harden = req.Harden
	}
	s.metrics.countSpecPolicy(cfg.Spec)
	c, err := repro.CompileCtx(ctx, req.Source, cfg)
	if cfg.VerifyPasses {
		s.countSpecheck(err)
	}
	if err != nil {
		return nil, err
	}
	s.countHarden(c.Harden)
	resp := &CompileResponse{
		Functions: len(c.Prog.Funcs),
		Stats:     c.TotalStats(),
		Harden:    c.Harden,
	}
	if c.ProfileErr != nil {
		resp.ProfileErr = c.ProfileErr.Error()
	}
	return resp, nil
}

// knownWorkload maps an unregistered workload name to a 400 before the
// job body runs. Resolution includes the hidden kernels: they are
// servable by name, just absent from GET /workloads.
func knownWorkload(name string) error {
	if _, ok := workloads.Resolve(name); !ok {
		return badRequestf("unknown workload %q", name)
	}
	return nil
}

// adaptiveManager returns (creating on first use) the tier manager for
// one workload. The manager's build config mirrors RunEvalCtx's
// default, so the artifact its recompiler verifies is exactly the one
// a config-less evaluation is served from.
func (s *Server) adaptiveManager(w workloads.Workload) *adaptive.Manager {
	if m, ok := s.adaptiveMgrs.Load(w.Name); ok {
		return m.(*adaptive.Manager)
	}
	m := adaptive.NewManager(adaptive.Config{
		Source: w.Src,
		Build:  repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs},
		Policy: s.cfg.AdaptivePolicy,
		Logger: s.log,
		OnTransition: func(tr adaptive.Transition) {
			s.metrics.countTierTransition(tr.From.String(), tr.To.String(), tr.To > tr.From)
			s.log.Printf("adaptive: %s %s", w.Name, tr)
		},
	})
	if prev, loaded := s.adaptiveMgrs.LoadOrStore(w.Name, m); loaded {
		m.Close() // lost the creation race
		return prev.(*adaptive.Manager)
	}
	return m
}

func (s *Server) handleEvaluate(ctx context.Context, r *http.Request) (any, error) {
	var req experiments.EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if err := knownWorkload(req.Workload); err != nil {
		return nil, err
	}
	for fn, tier := range req.FnTiers {
		if _, ok := adaptive.TierByName(tier); !ok {
			return nil, badRequestf("unknown tier %q for function %q", tier, fn)
		}
	}
	// An evaluation that pins neither a config nor explicit tiers is
	// adaptive traffic: serve it under the workload's published
	// assignment and feed its counters back into the monitor. Requests
	// that pin either are reproductions of a specific build and bypass
	// both sides of the loop.
	var mgr *adaptive.Manager
	var asn *adaptive.Assignment
	if s.cfg.Adaptive && req.Config == nil && req.FnTiers == nil {
		w, _ := workloads.Resolve(req.Workload)
		mgr = s.adaptiveManager(w)
		asn = mgr.Snapshot()
		req.FnTiers = asn.Tiers
	}
	// mirror RunEvalCtx's config defaulting for the policy counter
	mode := repro.SpecProfile
	if req.Config != nil {
		mode = req.Config.Spec
	}
	s.metrics.countSpecPolicy(mode)
	res, err := experiments.RunEvalCtx(ctx, req)
	if req.Verify || (req.Config != nil && req.Config.VerifyPasses) {
		s.countSpecheck(err)
	}
	if err != nil {
		return nil, err
	}
	if mgr != nil {
		mgr.Observe(asn.Version, res.Result.PerFunc)
	}
	s.countHarden(res.Harden)
	s.metrics.addSpec(res.Result.Counters.LoadsRetired, res.Result.Counters.CheckLoads, res.Result.Counters.FailedChecks)
	// MarshalEval, not a local encoder: the bytes must match the CLI
	return experiments.MarshalEval(res)
}

// SweepRequest is POST /sweep's body: one workload re-timed under a
// grid of machine configs. Via the record-and-replay path (PR 3) the
// program executes functionally once and every grid point is a cheap
// trace replay sharing that one recording.
type SweepRequest struct {
	Workload string           `json:"workload"`
	Configs  []machine.Config `json:"configs,omitempty"` // nil = the standard sensitivity grid
	Workers  int              `json:"workers,omitempty"`
}

// SweepResponse is the sweep's grid of measurements, index-aligned
// with the requested configs.
type SweepResponse struct {
	Workload string                     `json:"workload"`
	Points   []experiments.MachinePoint `json:"points"`
}

func (s *Server) handleSweep(ctx context.Context, r *http.Request) (any, error) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if err := knownWorkload(req.Workload); err != nil {
		return nil, err
	}
	points, err := experiments.RunMachineSweepCtx(ctx, req.Workload, req.Configs, req.Workers)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		s.metrics.addSpec(0, 0, p.FailedChecks)
	}
	return &SweepResponse{Workload: req.Workload, Points: points}, nil
}

// CorpusRequest is POST /corpus's body: one MiniC source file from a
// corpus sweep, analyzed into the per-file speculation statistics the
// coordinator aggregates (see experiments.AggregateCorpus). Name is an
// opaque label echoed into the result; the analysis is keyed by content.
type CorpusRequest struct {
	Name    string `json:"name"`
	Source  string `json:"source"`
	Workers int    `json:"workers,omitempty"`
}

func (s *Server) handleCorpus(ctx context.Context, r *http.Request) (any, error) {
	var req CorpusRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	// No pre-validation of the source: an unparseable file must fail
	// with the pipeline's own error so the coordinator's failure
	// records match a single-node run byte for byte.
	res, err := experiments.RunCorpusFileCtx(ctx, experiments.CorpusFile{Name: req.Name, Source: req.Source}, req.Workers)
	if err != nil {
		return nil, err
	}
	// MarshalCorpusFile, not a local encoder: the coordinator diffs
	// fleet output against single-node bytes.
	return experiments.MarshalCorpusFile(res)
}

// --- cache peer endpoints ---
//
// GET/PUT /cache/{key} serve the remote cache tier to fleet peers.
// They intentionally bypass the job admission queue: a worker whose
// slots are all busy computing must still answer peer lookups (the
// busy jobs may themselves be waiting on peer caches — admission here
// would deadlock the fleet), and a draining worker keeps serving reads
// so its warm entries stay reachable while it finishes. Both are
// cheap, compute-free paths: a peek never runs a compute function and
// never consults this process's own remote tier.

// maxCachePut bounds an uploaded cache entry, mirroring the remote
// tier's own response cap.
const maxCachePut = 64 << 20

func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		s.metrics.countRequest("cacheGet", http.StatusBadRequest)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, ok := repro.CachePeekBytes(key)
	if !ok {
		s.metrics.countRequest("cacheGet", http.StatusNotFound)
		http.Error(w, "no such entry", http.StatusNotFound)
		return
	}
	s.metrics.countRequest("cacheGet", http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	key, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		s.metrics.countRequest("cachePut", http.StatusBadRequest)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxCachePut+1))
	if err != nil || len(data) > maxCachePut {
		s.metrics.countRequest("cachePut", http.StatusRequestEntityTooLarge)
		http.Error(w, "entry too large or unreadable", http.StatusRequestEntityTooLarge)
		return
	}
	repro.CachePutBytes(key, data)
	s.metrics.countRequest("cachePut", http.StatusNoContent)
	w.WriteHeader(http.StatusNoContent)
}
