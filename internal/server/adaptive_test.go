package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/experiments"
)

// quiesceAdaptive waits out the named workload's in-flight recompile,
// so the next request is served under the freshly published
// assignment.
func quiesceAdaptive(t *testing.T, s *Server, workload string) {
	t.Helper()
	m, ok := s.adaptiveMgrs.Load(workload)
	if !ok {
		t.Fatalf("no adaptive manager for %q", workload)
	}
	m.(*adaptive.Manager).Quiesce()
}

// TestAdaptiveEvaluateLoop drives the full serve -> observe -> demote ->
// hot-swap -> re-promote loop over plain /evaluate traffic: a drifted
// input demotes the hot function (visible in the transition and deopt
// metrics), and the demoted response is byte-identical to a fresh
// compile pinned to the same tier. Clean traffic then re-promotes.
func TestAdaptiveEvaluateLoop(t *testing.T) {
	s := newTestServer(t, Config{
		Adaptive: true,
		// One drifted evaluation must close a window and decide, so the
		// demotion is deterministic for the assertions below.
		AdaptivePolicy: adaptive.Policy{WindowChecks: 64, WindowEvals: 4, MinChecks: 16},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drifted traffic: the input aliases on half the hot iterations.
	resp := postJSON(t, ts, "/evaluate", experiments.EvalRequest{Workload: "drift", Args: []int64{256, 2}})
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("drift evaluate = %d %s", resp.StatusCode, body)
	}
	quiesceAdaptive(t, s, "drift")

	counters := scrape(t, ts)
	if got := counters[`specd_tier_transitions_total{from="aggressive",to="cautious"}`]; got != 1 {
		t.Fatalf("demotion not published: transitions = %v", counters)
	}
	if got := counters["specd_deopt_total"]; got != 1 {
		t.Fatalf("specd_deopt_total = %v, want 1", got)
	}

	// The next evaluation is served under the swapped assignment; its
	// bytes must match a fresh CLI compile pinned to the same tier.
	resp = postJSON(t, ts, "/evaluate", experiments.EvalRequest{Workload: "drift", Args: []int64{256, 64}})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap evaluate = %d %s", resp.StatusCode, body)
	}
	want, err := experiments.RunEvalCtx(context.Background(), experiments.EvalRequest{
		Workload: "drift",
		Args:     []int64{256, 64},
		FnTiers:  map[string]string{"hot": "cautious"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := experiments.MarshalEval(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(wantBytes) {
		t.Errorf("post-swap response not byte-identical to a fresh compile at the new tier:\n got %s\nwant %s", body, wantBytes)
	}
	quiesceAdaptive(t, s, "drift")

	// That clean evaluation closed a clean window: the probation budget
	// (one clean window after a first demotion) re-promotes.
	counters = scrape(t, ts)
	if got := counters[`specd_tier_transitions_total{from="cautious",to="aggressive"}`]; got != 1 {
		t.Fatalf("re-promotion not published: transitions = %v", counters)
	}
	if got := counters["specd_deopt_total"]; got != 1 {
		t.Fatalf("re-promotion must not count as a deopt, got %v", got)
	}
}

// TestEvaluateExplicitFnTiers: explicit fnTiers suppress the adaptive
// loop (the request names its build), land in the echoed config, and
// reproduce the CLI's bytes; an unknown tier name is the client's
// fault.
func TestEvaluateExplicitFnTiers(t *testing.T) {
	s := newTestServer(t, Config{Adaptive: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := experiments.EvalRequest{Workload: "drift", FnTiers: map[string]string{"hot": "none"}}
	resp := postJSON(t, ts, "/evaluate", req)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d %s", resp.StatusCode, body)
	}
	want, err := experiments.RunEvalCtx(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := experiments.MarshalEval(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(wantBytes) {
		t.Errorf("explicit-tier response differs from CLI bytes:\n got %s\nwant %s", body, wantBytes)
	}
	if _, ok := s.adaptiveMgrs.Load("drift"); ok {
		t.Error("explicit-tier request must not start the adaptive loop")
	}

	resp = postJSON(t, ts, "/evaluate", experiments.EvalRequest{Workload: "drift", FnTiers: map[string]string{"hot": "turbo"}})
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown tier name = %d, want 400", resp.StatusCode)
	}
}

// TestAdaptiveOffNoInjection: without -adaptive the server must serve
// config-less evaluations exactly as before (no manager, no tier
// metrics).
func TestAdaptiveOffNoInjection(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/evaluate", experiments.EvalRequest{Workload: "drift", Args: []int64{256, 2}})
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate = %d %s", resp.StatusCode, body)
	}
	if _, ok := s.adaptiveMgrs.Load("drift"); ok {
		t.Error("adaptive manager created with Adaptive off")
	}
}
