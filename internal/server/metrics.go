package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro"
)

// metrics is the hand-rolled Prometheus-text-format registry behind GET
// /metrics: gauges for queue depth and in-flight jobs, a counter per
// (endpoint, code), per-phase latency histograms, the compilation
// cache's cumulative counters, and the summed speculation counters of
// every completed request — the paper's Fig. 10/11 quantities (loads
// retired, check loads, failed checks), observable live. Everything
// except the two gauges is monotone, which the drain test asserts.
type metrics struct {
	queueDepth atomic.Int64
	inflight   atomic.Int64

	mu         sync.Mutex
	requests   map[reqKey]uint64     // (endpoint, code) -> count
	phases     map[string]*histogram // phase -> latency histogram
	specPolicy map[string]uint64     // speculation mode -> compilations
	tierTrans  map[tierEdge]uint64   // adaptive (from, to) -> published transitions

	// deopts counts published demotions (a transition toward a less
	// speculative tier): the adaptive runtime giving speculation back.
	deopts atomic.Int64

	specLoadsRetired atomic.Int64
	specCheckLoads   atomic.Int64
	specFailedChecks atomic.Int64

	// specheck counters: compilations that ran with VerifyPasses and
	// came back clean, and the total violations the checker reported
	// (normally zero forever — a nonzero value is an alert condition,
	// since it means the pipeline produced unsound speculation).
	specheckVerified   atomic.Int64
	specheckViolations atomic.Int64

	// hardening counters: Layer 3 leaks found (and closed — hardened
	// compiles fail rather than ship a residual leak) and fences
	// inserted across every served request that asked for hardening.
	leaksFound     atomic.Int64
	fencesInserted atomic.Int64
}

// reqKey labels one requests_total series.
type reqKey struct {
	endpoint string
	code     int
}

// tierEdge labels one tier_transitions_total series.
type tierEdge struct {
	from, to string
}

func newMetrics() *metrics {
	return &metrics{
		requests:   map[reqKey]uint64{},
		phases:     map[string]*histogram{},
		specPolicy: map[string]uint64{},
		tierTrans:  map[tierEdge]uint64{},
	}
}

// phaseBuckets are the histogram upper bounds in seconds, spanning a
// cache-warm replay (sub-millisecond) to a cold multi-workload sweep.
var phaseBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// histogram is a fixed-bucket latency histogram; counts are per bucket
// (the +Inf overflow is the last slot) and cumulated at render time.
type histogram struct {
	counts []uint64
	count  uint64
	sum    float64
}

func (h *histogram) observe(seconds float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(phaseBuckets)+1)
	}
	i := sort.SearchFloat64s(phaseBuckets, seconds)
	h.counts[i]++
	h.count++
	h.sum += seconds
}

func (m *metrics) countRequest(endpoint string, code int) {
	m.mu.Lock()
	m.requests[reqKey{endpoint, code}]++
	m.mu.Unlock()
}

func (m *metrics) observePhase(phase string, seconds float64) {
	m.mu.Lock()
	h := m.phases[phase]
	if h == nil {
		h = &histogram{}
		m.phases[phase] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

// countSpecPolicy records which speculation flag source a compile or
// evaluate request ran under ("off", "profile", "heuristic", "cost") —
// the live view of how callers use the cost-model policy.
func (m *metrics) countSpecPolicy(mode repro.SpecMode) {
	m.mu.Lock()
	m.specPolicy[mode.String()]++
	m.mu.Unlock()
}

// countTierTransition records one published adaptive tier change;
// demotions (toward a less speculative tier) also bump the deopt
// counter.
func (m *metrics) countTierTransition(from, to string, demotion bool) {
	m.mu.Lock()
	m.tierTrans[tierEdge{from, to}]++
	m.mu.Unlock()
	if demotion {
		m.deopts.Add(1)
	}
}

func (m *metrics) addSpec(loadsRetired, checkLoads, failedChecks int64) {
	m.specLoadsRetired.Add(loadsRetired)
	m.specCheckLoads.Add(checkLoads)
	m.specFailedChecks.Add(failedChecks)
}

// write renders the registry in Prometheus text exposition format, in a
// deterministic order (sorted label sets) so scrapes diff cleanly.
func (m *metrics) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP specd_queue_depth Jobs admitted and waiting for a worker slot.\n")
	fmt.Fprintf(w, "# TYPE specd_queue_depth gauge\n")
	fmt.Fprintf(w, "specd_queue_depth %d\n", m.queueDepth.Load())
	fmt.Fprintf(w, "# HELP specd_inflight_jobs Jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE specd_inflight_jobs gauge\n")
	fmt.Fprintf(w, "specd_inflight_jobs %d\n", m.inflight.Load())

	m.mu.Lock()
	reqKeys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	fmt.Fprintf(w, "# HELP specd_requests_total Requests served, by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE specd_requests_total counter\n")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "specd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	policyKeys := make([]string, 0, len(m.specPolicy))
	for k := range m.specPolicy {
		policyKeys = append(policyKeys, k)
	}
	sort.Strings(policyKeys)
	fmt.Fprintf(w, "# HELP specd_spec_policy_total Compilations served, by data-speculation flag source.\n")
	fmt.Fprintf(w, "# TYPE specd_spec_policy_total counter\n")
	for _, k := range policyKeys {
		fmt.Fprintf(w, "specd_spec_policy_total{mode=%q} %d\n", k, m.specPolicy[k])
	}

	edgeKeys := make([]tierEdge, 0, len(m.tierTrans))
	for k := range m.tierTrans {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Slice(edgeKeys, func(i, j int) bool {
		if edgeKeys[i].from != edgeKeys[j].from {
			return edgeKeys[i].from < edgeKeys[j].from
		}
		return edgeKeys[i].to < edgeKeys[j].to
	})
	fmt.Fprintf(w, "# HELP specd_tier_transitions_total Adaptive tier transitions published, by source and destination tier.\n")
	fmt.Fprintf(w, "# TYPE specd_tier_transitions_total counter\n")
	for _, k := range edgeKeys {
		fmt.Fprintf(w, "specd_tier_transitions_total{from=%q,to=%q} %d\n", k.from, k.to, m.tierTrans[k])
	}

	phaseKeys := make([]string, 0, len(m.phases))
	for k := range m.phases {
		phaseKeys = append(phaseKeys, k)
	}
	sort.Strings(phaseKeys)
	fmt.Fprintf(w, "# HELP specd_phase_seconds Job latency by phase.\n")
	fmt.Fprintf(w, "# TYPE specd_phase_seconds histogram\n")
	for _, k := range phaseKeys {
		h := m.phases[k]
		var cum uint64
		for i, ub := range phaseBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "specd_phase_seconds_bucket{phase=%q,le=\"%g\"} %d\n", k, ub, cum)
		}
		cum += h.counts[len(phaseBuckets)]
		fmt.Fprintf(w, "specd_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", k, cum)
		fmt.Fprintf(w, "specd_phase_seconds_sum{phase=%q} %g\n", k, h.sum)
		fmt.Fprintf(w, "specd_phase_seconds_count{phase=%q} %d\n", k, h.count)
	}
	m.mu.Unlock()

	// the compilation cache's cumulative counters (see internal/cache)
	cs := repro.CacheStats()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"specd_cache_mem_hits_total", "In-memory cache tier hits.", cs.MemHits},
		{"specd_cache_mem_misses_total", "In-memory cache tier misses.", cs.MemMisses},
		{"specd_cache_disk_hits_total", "On-disk cache tier hits.", cs.DiskHits},
		{"specd_cache_disk_misses_total", "On-disk cache tier misses.", cs.DiskMisses},
		{"specd_cache_remote_hits_total", "Remote (peer) cache tier hits.", cs.RemoteHits},
		{"specd_cache_remote_misses_total", "Remote (peer) cache tier misses.", cs.RemoteMisses},
		{"specd_cache_remote_puts_total", "Computed entries pushed to the remote (peer) tier.", cs.RemotePuts},
		{"specd_cache_computes_total", "Cache compute functions actually run.", cs.Computes},
		{"specd_cache_evictions_total", "In-memory cache entries evicted.", cs.Evictions},
		{"specd_cache_corrupt_total", "On-disk cache entries discarded as corrupt.", cs.Corrupt},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}

	// profiling interpreter runs actually executed (cache misses): the
	// fleet smoke test asserts a warm corpus re-run leaves this flat on
	// every worker — zero recomputation fleet-wide.
	fmt.Fprintf(w, "# HELP specd_profiling_runs_total Profiling interpreter runs actually executed (profile-cache misses).\n")
	fmt.Fprintf(w, "# TYPE specd_profiling_runs_total counter\n")
	fmt.Fprintf(w, "specd_profiling_runs_total %d\n", repro.ProfilingRuns())

	// resident size of the decoded traces the record-and-replay path
	// keeps in the memory tier (a gauge: eviction and Reset shrink it)
	fmt.Fprintf(w, "# HELP specd_trace_bytes Decoded machine traces resident in the in-memory cache tier, in bytes.\n")
	fmt.Fprintf(w, "# TYPE specd_trace_bytes gauge\n")
	fmt.Fprintf(w, "specd_trace_bytes %d\n", repro.TraceCacheBytes())

	// speculation counters summed over every completed request — the
	// live view of the paper's Fig. 10/11 quantities
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"specd_spec_loads_retired_total", "Loads retired across all served evaluations.", m.specLoadsRetired.Load()},
		{"specd_spec_check_loads_total", "Check loads (ld.c/ldf.c) across all served evaluations.", m.specCheckLoads.Load()},
		{"specd_spec_failed_checks_total", "Failed speculation checks across all served evaluations.", m.specFailedChecks.Load()},
		{"specd_specheck_verified_total", "Compilations that ran the speculation-soundness checker and passed.", m.specheckVerified.Load()},
		{"specd_specheck_violations_total", "Speculation-soundness violations reported by verify-enabled compilations (nonzero means the pipeline produced unsound speculation).", m.specheckViolations.Load()},
		{"specd_deopt_total", "Published adaptive demotions: functions moved to a less speculative tier after observed mis-speculation.", m.deopts.Load()},
		{"specd_leaks_found_total", "Speculative leaks found (and closed) by the Layer 3 taint analysis across hardened requests.", m.leaksFound.Load()},
		{"specd_fences_inserted_total", "Fences inserted by the hardening pass across hardened requests.", m.fencesInserted.Load()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v)
	}
}
