package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/machine"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	return New(cfg)
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestHealthzAndWorkloads(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}

	resp, err = ts.Client().Get(ts.URL + "/workloads")
	if err != nil {
		t.Fatal(err)
	}
	var ws []experiments.WorkloadInfo
	if err := json.Unmarshal(readAll(t, resp), &ws); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range ws {
		if w.Name == "equake" {
			found = true
		}
	}
	if !found {
		t.Fatalf("workloads missing equake: %+v", ws)
	}
}

// parseCounters reads the Prometheus text rendering into name{labels} ->
// value for every non-comment sample line.
func parseCounters(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return parseCounters(t, string(readAll(t, resp)))
}

// TestAdmissionControlAndDrain exercises the whole admission state
// machine on a Workers=1, Queue=1 server with a controllable job body:
// the first job executes, the second queues, the third bounces with 429;
// BeginDrain rejects the queued job with 503 while the in-flight job
// finishes with 200, healthz flips to 503, and every *_total counter in
// /metrics is monotone across the drain.
func TestAdmissionControlAndDrain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Queue: 1})

	block := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(block) }) }
	defer release()
	started := make(chan struct{}, 4)
	s.mux.HandleFunc("POST /test", s.job("test", func(ctx context.Context, r *http.Request) (any, error) {
		started <- struct{}{}
		<-block
		return map[string]string{"ok": "true"}, nil
	}))

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		body string
	}
	do := func(ch chan<- result) {
		resp, err := ts.Client().Post(ts.URL+"/test", "application/json", strings.NewReader("{}"))
		if err != nil {
			ch <- result{-1, err.Error()}
			return
		}
		ch <- result{resp.StatusCode, string(readAll(t, resp))}
	}

	// job 1: takes the single worker slot and blocks
	r1 := make(chan result, 1)
	go do(r1)
	<-started

	// job 2: admitted into the queue (depth becomes 1)
	r2 := make(chan result, 1)
	go do(r2)
	waitFor(t, func() bool { return s.metrics.queueDepth.Load() == 1 })

	before := scrape(t, ts)
	if got := before["specd_queue_depth"]; got != 1 {
		t.Fatalf("queue depth gauge = %g, want 1", got)
	}
	if got := before["specd_inflight_jobs"]; got != 1 {
		t.Fatalf("inflight gauge = %g, want 1", got)
	}

	// job 3: queue full -> immediate 429
	r3 := make(chan result, 1)
	go do(r3)
	if res := <-r3; res.code != http.StatusTooManyRequests {
		t.Fatalf("third job = %d %q, want 429", res.code, res.body)
	}

	// drain: the queued job is rejected with 503, the in-flight one
	// runs to completion
	s.BeginDrain()
	if res := <-r2; res.code != http.StatusServiceUnavailable {
		t.Fatalf("queued job after drain = %d %q, want 503", res.code, res.body)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	release()
	if res := <-r1; res.code != http.StatusOK {
		t.Fatalf("in-flight job after drain = %d %q, want 200", res.code, res.body)
	}
	// a brand-new job is rejected up front
	rNew := make(chan result, 1)
	go do(rNew)
	if res := <-rNew; res.code != http.StatusServiceUnavailable {
		t.Fatalf("new job while draining = %d, want 503", res.code)
	}

	after := scrape(t, ts)
	for name, v := range before {
		if strings.Contains(name, "_total") && after[name] < v {
			t.Errorf("counter %s went backwards: %g -> %g", name, v, after[name])
		}
	}
	if after["specd_queue_depth"] != 0 || after["specd_inflight_jobs"] != 0 {
		t.Fatalf("gauges after drain: depth=%g inflight=%g, want 0/0",
			after["specd_queue_depth"], after["specd_inflight_jobs"])
	}
	wantCodes := map[string]float64{
		`specd_requests_total{endpoint="test",code="200"}`: 1,
		`specd_requests_total{endpoint="test",code="429"}`: 1,
		`specd_requests_total{endpoint="test",code="503"}`: 2,
	}
	for series, want := range wantCodes {
		if got := after[series]; got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPanicRecovery proves a panicking job body yields a 500 with the
// JSON error envelope for that request only — the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	boom := true
	s.mux.HandleFunc("POST /test", s.job("test", func(ctx context.Context, r *http.Request) (any, error) {
		if boom {
			panic("kaboom")
		}
		return map[string]string{"ok": "true"}, nil
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/test", struct{}{})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking job = %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("missing X-Request-Id on panic response")
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("panic response is not the JSON envelope: %q", body)
	}
	if !strings.Contains(e.Error, "kaboom") || e.RequestID == "" {
		t.Fatalf("envelope = %+v", e)
	}

	boom = false
	resp = postJSON(t, ts, "/test", struct{}{})
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after a panic = %d, want 200 (worker slot leaked?)", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		body string
	}{
		{"/evaluate", `{"workload":"no-such-workload"}`},
		{"/sweep", `{"workload":"no-such-workload"}`},
		{"/evaluate", `{not json`},
		{"/evaluate", `{"workload":"equake","bogusField":1}`},
		{"/compile", `{"source":""}`},
	}
	for _, c := range cases {
		resp, err := ts.Client().Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s = %d %q, want 400", c.path, c.body, resp.StatusCode, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.RequestID == "" {
			t.Errorf("POST %s: error envelope = %q (%v)", c.path, body, err)
		}
	}
}

// TestRequestTimeout proves the per-request deadline converts to a 504
// instead of hanging the slot.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Timeout: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts, "/evaluate", experiments.EvalRequest{Workload: "equake"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out evaluate = %d %q, want 504", resp.StatusCode, body)
	}
}

// TestCompileSpecPolicyMetric checks that served compilations show up in
// specd_spec_policy_total under the speculation mode they ran with: one
// cost-policy compile, one defaulted (profile-guided) compile.
func TestCompileSpecPolicyMetric(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const src = `int g = 0; int main() { g = 7; print(g); return 0; }`
	for _, req := range []CompileRequest{
		{Source: src, Config: &repro.Config{Spec: repro.SpecCost, SpecThreshold: 2}},
		{Source: src}, // defaults to SpecProfile
	} {
		resp := postJSON(t, ts, "/compile", req)
		if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
			t.Fatalf("compile = %d %q", resp.StatusCode, body)
		}
	}
	counters := scrape(t, ts)
	for _, mode := range []string{"cost", "profile"} {
		key := fmt.Sprintf("specd_spec_policy_total{mode=%q}", mode)
		if counters[key] != 1 {
			t.Errorf("%s = %g, want 1", key, counters[key])
		}
	}
}

// TestEvaluateByteIdentical is the service's core contract: POST
// /evaluate returns exactly the bytes `experiments -exp eval -json`
// prints for the same (workload, config) — cold cache and warm cache,
// serial and 8-way parallel execution.
func TestEvaluateByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and times a workload")
	}
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// the CLI rendering of the same request (cmd/experiments -exp eval)
	cliBytes := func(workers int) []byte {
		res, err := experiments.RunEvalCtx(context.Background(), experiments.EvalRequest{
			Workload: "equake", Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := experiments.MarshalEval(res)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	repro.ResetCaches()
	want := cliBytes(1)
	for _, cold := range []bool{true, false} {
		for _, workers := range []int{1, 8} {
			if cold {
				repro.ResetCaches()
			}
			resp := postJSON(t, ts, "/evaluate", experiments.EvalRequest{Workload: "equake", Workers: workers})
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("cold=%v workers=%d: %d %q", cold, workers, resp.StatusCode, body)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("cold=%v workers=%d: server bytes differ from CLI bytes:\nserver: %s\ncli:    %s",
					cold, workers, body, want)
			}
		}
	}
}

// TestEvaluateHardenedByteIdentical extends the byte-identity contract
// to hardened builds: POST /evaluate with harden:"fence" must return
// exactly the bytes the CLI path produces for the same hardened
// request (including the embedded harden report), and the served
// request must show up in the hardening counters.
func TestEvaluateHardenedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and times a workload")
	}
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wantLeaks, wantFences float64
	for _, pol := range []string{"fence", "hoist"} {
		req := experiments.EvalRequest{Workload: "mcf", Harden: pol}
		res, err := experiments.RunEvalCtx(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := experiments.MarshalEval(res)
		if err != nil {
			t.Fatal(err)
		}
		if res.Harden == nil {
			t.Fatalf("%s: CLI result carries no harden report", pol)
		}
		if res.Harden.Residual != 0 {
			t.Fatalf("%s: hardened build has %d residual leaks", pol, res.Harden.Residual)
		}
		wantLeaks += float64(res.Harden.LeaksFound)
		wantFences += float64(res.Harden.FencesInserted)

		resp := postJSON(t, ts, "/evaluate", req)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: evaluate = %d %q", pol, resp.StatusCode, body)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("%s: server bytes differ from CLI bytes:\nserver: %s\ncli:    %s", pol, body, want)
		}
	}

	// the counters must render (even at zero: bundled workloads are
	// leak-free by construction) and agree with the served reports
	counters := scrape(t, ts)
	for name, want := range map[string]float64{
		"specd_leaks_found_total":     wantLeaks,
		"specd_fences_inserted_total": wantFences,
	} {
		got, ok := counters[name]
		if !ok {
			t.Errorf("%s missing from /metrics", name)
		} else if got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}

// TestCompileHarden checks the /compile surface of the hardening pass:
// a bad policy is a 400, a good one returns the report in the response.
func TestCompileHarden(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const src = `int g = 0; int main() { g = 7; print(g); return 0; }`
	resp := postJSON(t, ts, "/compile", CompileRequest{Source: src, Harden: "lfence"})
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad policy = %d %q, want 400", resp.StatusCode, body)
	}

	resp = postJSON(t, ts, "/compile", CompileRequest{Source: src, Harden: "fence"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile = %d %q", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Harden == nil {
		t.Fatalf("hardened compile response carries no report: %s", body)
	}
	if cr.Harden.Residual != 0 {
		t.Fatalf("residual leaks in hardened compile: %+v", cr.Harden)
	}
}

// TestSweepEndpoint drives POST /sweep over a tiny explicit grid and
// checks the points are index-aligned with the request.
func TestSweepEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and times a workload")
	}
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	m1, m2 := machine.Defaults(), machine.Defaults()
	m2.ALATSize = 4
	resp := postJSON(t, ts, "/sweep", SweepRequest{
		Workload: "equake",
		Configs:  []machine.Config{m1, m2},
	})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d %q", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Workload != "equake" || len(sr.Points) != 2 {
		t.Fatalf("sweep response = %+v", sr)
	}
	for i, p := range sr.Points {
		if p.Cycles == 0 {
			t.Fatalf("point %d has zero cycles: %+v", i, p)
		}
	}
}

// TestSweepCancellation is the acceptance criterion in service form:
// POST /sweep with a client that disconnects mid-flight must observe the
// cancellation promptly (the handler returns; the slot frees) rather
// than timing the whole grid.
func TestSweepCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a workload")
	}
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(SweepRequest{Workload: "equake", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			readAll(t, resp)
		}
		done <- err
	}()
	waitFor(t, func() bool { return s.metrics.inflight.Load() == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled sweep did not return promptly")
	}
	// the worker slot must come back so the next job runs
	waitFor(t, func() bool { return s.metrics.inflight.Load() == 0 })
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after cancel = %d", resp.StatusCode)
	}
}

// TestConcurrentRequestIDsUnique hammers a trivial job and checks every
// response carries a distinct request id.
func TestConcurrentRequestIDsUnique(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, Queue: 64})
	s.mux.HandleFunc("POST /test", s.job("test", func(ctx context.Context, r *http.Request) (any, error) {
		return map[string]string{"ok": "true"}, nil
	}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 32
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/test", "application/json", strings.NewReader("{}"))
			if err != nil {
				t.Error(err)
				return
			}
			readAll(t, resp)
			ids <- resp.Header.Get("X-Request-Id")
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty request id %q", id)
		}
		seen[id] = true
	}
}
