package specheck_test

// The clean-matrix test: the speculation-soundness checker must report
// zero violations on every bundled workload under every speculation mode
// and pipeline variant, serially and in parallel. This is the other half
// of the mutation harness (mutate/mutate_test.go): the mutants prove the
// checker catches broken pipelines, this proves it accepts the real one.

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/workloads"
)

// variants is the configuration matrix from the acceptance criteria:
// the three flag sources, the alias-analysis ablation, aggressive
// promotion, the unoptimized pipeline and the scheduler.
func variants() map[string]repro.Config {
	return map[string]repro.Config{
		"off":        {Spec: repro.SpecOff},
		"profile":    {Spec: repro.SpecProfile},
		"heuristic":  {Spec: repro.SpecHeuristic},
		"cost":       {Spec: repro.SpecCost},
		"cost-hi":    {Spec: repro.SpecCost, SpecThreshold: 8},
		"no-type-aa": {Spec: repro.SpecProfile, NoTypeBasedAA: true},
		"aggressive": {AggressivePromotion: true},
		"opt-off":    {OptimizeOff: true},
		"schedule":   {Spec: repro.SpecProfile, Schedule: true},
	}
}

func TestPipelineIsCleanOnAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		for name, cfg := range variants() {
			for _, workers := range []int{1, 8} {
				w, name, cfg, workers := w, name, cfg, workers
				t.Run(fmt.Sprintf("%s/%s/w%d", w.Name, name, workers), func(t *testing.T) {
					t.Parallel()
					cfg.ProfileArgs = w.ProfileArgs
					cfg.VerifyPasses = true
					cfg.Workers = workers
					c, err := repro.Compile(w.Src, cfg)
					if err != nil {
						t.Fatalf("specheck found violations in the real pipeline: %v", err)
					}
					if c.ProfileErr != nil {
						t.Fatalf("profiling run failed: %v", c.ProfileErr)
					}
					// the verified program must still run correctly
					res, err := c.Run(w.RefArgs)
					if err != nil {
						t.Fatalf("verified program faulted: %v", err)
					}
					ref, err := c.RunReference(w.RefArgs)
					if err != nil {
						t.Fatalf("reference: %v", err)
					}
					if res.Output != ref.Output {
						t.Fatalf("verified program output differs from reference:\n%q\nvs\n%q",
							res.Output, ref.Output)
					}
				})
			}
		}
	}
}
