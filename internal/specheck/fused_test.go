package specheck_test

// Regression test for the Assign-case blind spot shared by the annotator,
// the flag assigner and this checker: an indirect load whose destination
// is itself a memory-resident scalar is simultaneously a load (mu list)
// and a direct store (chi on the destination class's virtual variable).
// All three used exclusive case analysis and silently took the load arm,
// so the store side carried no chi and nothing noticed — the checker had
// the same blind spot as the code it checks. The frontend never emits
// this shape (lowering loads into a fresh temp), so the test fuses the
// temp away in lowered IR, the way a copy-propagating pass could.

import (
	"testing"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/source"
	"repro/internal/specheck"
)

func fusedProgram(t *testing.T) (*ir.Program, *alias.Result, *ir.Assign) {
	t.Helper()
	const src = `
int g = 0;
int h = 0;
int main() {
	int *p = &g;
	if (arg(0)) p = &h;
	int x = *p;
	g = x;
	print(g);
	return 0;
}`
	f, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := source.Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	main := prog.FuncMap["main"]
	var gSym *ir.Sym
	for _, g := range prog.Globals {
		if g.Name == "g" {
			gSym = g
		}
	}
	var load *ir.Assign
	for _, blk := range main.Blocks {
		for _, st := range blk.Stmts {
			if as, ok := st.(*ir.Assign); ok && as.RK == ir.RHSLoad {
				load = as
			}
		}
	}
	if load == nil {
		t.Fatal("no indirect load in lowered IR")
	}
	load.Dst = &ir.Ref{Sym: gSym}
	ar := alias.Analyze(prog, alias.Options{TypeBased: true})
	ar.Annotate(prog)
	core.AssignFlags(prog, ar, nil, core.ModeNone)
	return prog, ar, load
}

func TestCheckerAcceptsFusedLoadStore(t *testing.T) {
	prog, ar, load := fusedProgram(t)
	if len(load.Mus) == 0 || len(load.Chis) == 0 {
		t.Fatalf("fused load needs both lists: %d mus, %d chis", len(load.Mus), len(load.Chis))
	}
	env := &specheck.Env{Alias: ar, Mode: core.ModeNone}
	if vs := specheck.CheckAnnotated(prog, env, "test"); len(vs) > 0 {
		t.Errorf("CheckAnnotated rejected a correctly annotated fused load: %v", vs)
	}
	if vs := specheck.CheckFlags(prog, env, "test"); len(vs) > 0 {
		t.Errorf("CheckFlags rejected correctly flagged fused load: %v", vs)
	}
}

func TestCheckerCatchesFusedLoadStoreMutations(t *testing.T) {
	// mutation 1: the historical bug — the store-side chi is missing
	prog, ar, load := fusedProgram(t)
	env := &specheck.Env{Alias: ar, Mode: core.ModeNone}
	saved := load.Chis
	load.Chis = nil
	found := false
	for _, v := range specheck.CheckAnnotated(prog, env, "test") {
		if v.Rule == "missing-vv-chi" {
			found = true
		}
	}
	if !found {
		t.Error("CheckAnnotated missed the dropped store-side chi (the original blind spot)")
	}
	load.Chis = saved

	// mutation 2: the chi survives but stays weak under ModeNone,
	// licensing speculation past a real store
	load.Chis[0].Spec = false
	found = false
	for _, v := range specheck.CheckFlags(prog, env, "test") {
		if v.Rule == "wrong-chi-flag" {
			found = true
		}
	}
	if !found {
		t.Error("CheckFlags missed the unflagged store-side chi")
	}
}
