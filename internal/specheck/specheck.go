// Package specheck is the speculation-soundness verifier: a static
// analysis over the compiler's own output that proves the pipeline upheld
// the paper's central contract — a speculatively ignored weak update
// (a χ without the s-flag) is safe only because code generation emits a
// matching ALAT check (ld.c) that repairs mis-speculation at run time.
//
// The checker has two analysis layers:
//
//   - Layer 1 (speculative SSA invariants, on IR): dominance-aware
//     def-dominates-use verification for every SSA version, phi
//     operand/predecessor correspondence, χ/μ list consistency against
//     the alias result (every may-def site of a virtual variable carries
//     a χ for it), flag-policy re-derivation (s-flags exactly where the
//     profile or heuristic put them), and advanced-load/check-load
//     pairing on the shared PRE temporary.
//
//   - Layer 2 (check-coverage dataflow, on machine code): a forward
//     dataflow pass over codegen's output proving that on every CFG path
//     each ld.a is followed by an ld.c on the same register before the
//     first use that crosses a potentially-aliasing store, and that no
//     check appears without a must-reaching advanced load in its
//     register. A separate memory-order snapshot proves the scheduler
//     never reordered memory operations or moved a store between a check
//     and the copy that consumes its value.
//
// Violations carry the pass that introduced the broken state plus the
// function/block (or machine instruction) they were found in, so a
// failing pipeline run names its culprit. The package deliberately
// re-derives expected state from first principles (alias result, profile,
// dominators, machine-op semantics) instead of reusing the transformation
// code it is checking.
package specheck

import (
	"fmt"
	"strings"

	"repro/internal/alias"
	"repro/internal/core"
	"repro/internal/profile"
)

// Violation is one broken speculation-soundness invariant, attributed to
// the pipeline pass that introduced it.
type Violation struct {
	// Pass names the pipeline stage after which the violation was
	// detected ("alias-annotate", "assign-flags", "ssapre-round-2",
	// "out-of-ssa", "schedule", "codegen", ...).
	Pass string
	// Func is the containing function.
	Func string
	// Block is the IR block id, or -1 when the violation is not tied to
	// an IR block (machine-code layer).
	Block int
	// Instr is the machine instruction index within the function, or -1
	// for IR-level violations.
	Instr int
	// Rule is a short stable identifier of the broken invariant
	// ("check-without-provider", "use-crosses-store", ...).
	Rule string
	// Msg is the human-readable description.
	Msg string
}

func (v Violation) String() string {
	loc := v.Func
	if v.Block >= 0 {
		loc = fmt.Sprintf("%s B%d", v.Func, v.Block)
	}
	if v.Instr >= 0 {
		loc = fmt.Sprintf("%s @%d", v.Func, v.Instr)
	}
	return fmt.Sprintf("[%s] %s: %s: %s", v.Pass, loc, v.Rule, v.Msg)
}

// Error aggregates the violations of one verification run; repro.CompileCtx
// surfaces it when Config.VerifyPasses is set and a pass broke an
// invariant.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	const max = 5
	var b strings.Builder
	fmt.Fprintf(&b, "specheck: %d violation(s)", len(e.Violations))
	for i, v := range e.Violations {
		if i == max {
			fmt.Fprintf(&b, "; ... and %d more", len(e.Violations)-max)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return b.String()
}

// AsError wraps a violation list into an *Error, or returns nil for an
// empty list.
func AsError(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	return &Error{Violations: vs}
}

// Env carries the analysis context Layer 1 re-derives expectations from:
// the whole-program alias result and the exact (profile, mode, policy)
// triple core.AssignFlags ran with. Prof is nil outside the
// profile-guided modes (and the empty profile under aggressive
// promotion, matching the pipeline). Policy is consulted only under
// core.ModeCost; the zero value is replaced by core.DefaultPolicy(), so
// callers that never touch ModeCost need not set it.
type Env struct {
	Alias  *alias.Result
	Prof   *profile.Profile
	Mode   core.Mode
	Policy core.Policy
	// FnOverrides mirrors the per-function tier overrides the pipeline
	// assigned flags with (core.AssignFlagsTiered): functions named here
	// are re-derived under their own mode and policy instead of
	// Mode/Policy. Nil when the whole program compiled at one tier.
	FnOverrides map[string]core.FnOverride
}

// policy returns the expected-cost policy to re-derive ModeCost flags
// with, defaulting the zero value.
func (e *Env) policy() core.Policy {
	if e.Policy == (core.Policy{}) {
		return core.DefaultPolicy()
	}
	return e.Policy
}

// fnModePolicy returns the (mode, policy) pair the pipeline assigned
// fn's flags under: its override when re-tiered, the program-wide pair
// otherwise.
func (e *Env) fnModePolicy(fn string) (core.Mode, core.Policy) {
	if ov, ok := e.FnOverrides[fn]; ok {
		return ov.Mode, ov.Policy
	}
	return e.Mode, e.policy()
}
