// Package mutate seeds speculation-soundness bugs into the real
// pipeline's intermediate programs — deleted checks, retargeted check
// registers, dropped χs, corrupted phi arguments, loads hoisted past
// aliasing stores, and leak-shaped reorderings that let a speculative
// value reach an address computation or branch before its check — and
// pairs each mutation with the specheck layer that must catch it. The companion test asserts that every mutator is
// applicable somewhere on the bundled workloads, that the checker flags
// every single application, and that the unmutated pipeline stays
// clean. It is the detection half of the verifier's own verification:
// the clean-matrix test proves specheck accepts correct pipelines, this
// proves it rejects broken ones.
package mutate

import (
	"fmt"

	"repro/internal/alias"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/harden"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/source"
	"repro/internal/specheck"
	"repro/internal/ssapre"
)

// Stage identifies the pipeline point a mutator operates on, which also
// selects the specheck layer expected to detect it.
type Stage int

const (
	// StageAnnotated: after alias annotation and flag assignment, before
	// SSA. Checked by CheckAnnotated + CheckFlags.
	StageAnnotated Stage = iota
	// StageSSA: after core.BuildSSA (no PRE). Checked by CheckSSAFunc.
	StageSSA
	// StagePostPRE: after speculative SSAPRE and out-of-SSA conversion.
	// Checked by CheckPostSSA.
	StagePostPRE
	// StageSchedule: after SSAPRE; the mutation plays the role of a buggy
	// scheduler. Checked by SnapshotMemOrder + CheckSchedule.
	StageSchedule
	// StageMachine: after code generation. Checked by CheckMachine.
	StageMachine
)

func (s Stage) String() string {
	switch s {
	case StageAnnotated:
		return "annotated"
	case StageSSA:
		return "ssa"
	case StagePostPRE:
		return "post-pre"
	case StageSchedule:
		return "schedule"
	case StageMachine:
		return "machine"
	}
	return "stage?"
}

// Target is a program compiled up to a mutator's stage.
type Target struct {
	Stage Stage
	Prog  *ir.Program
	Code  *machine.Program // StageMachine only
	Env   *specheck.Env
}

// Build compiles src up to stage with profile-driven speculation (the
// mode that generates advanced/check loads), mirroring the real
// pipeline's stage order. Each call builds from scratch: mutations are
// destructive, so every (mutator, site) pair needs a fresh target.
func Build(src string, args []int64, stage Stage) (*Target, error) {
	file, err := source.Parse(src)
	if err != nil {
		return nil, err
	}
	prog, err := source.Lower(file)
	if err != nil {
		return nil, err
	}
	alias.Refine(prog)
	ar := alias.Analyze(prog, alias.Options{TypeBased: true})
	ar.Annotate(prog)
	prof := profile.New()
	if _, err := interp.Run(prog, interp.Options{
		CollectEdges: true, CollectAlias: true, Profile: prof, Args: args,
	}); err != nil {
		return nil, fmt.Errorf("profiling run: %w", err)
	}
	prof.ApplyEdges(prog)
	core.AssignFlags(prog, ar, prof, core.ModeProfile)
	t := &Target{
		Stage: stage,
		Prog:  prog,
		Env:   &specheck.Env{Alias: ar, Prof: prof, Mode: core.ModeProfile},
	}
	if stage == StageAnnotated {
		return t, nil
	}
	if stage == StageSSA {
		for _, fn := range prog.Funcs {
			core.BuildSSA(fn, ar.FuncVirtuals[fn])
		}
		return t, nil
	}
	if _, err := ssapre.Run(prog, ssapre.Options{
		DataSpec: core.ModeProfile, ControlSpec: true, Alias: ar, Workers: 1,
	}); err != nil {
		return nil, err
	}
	if stage == StageMachine {
		code, err := codegen.Lower(prog)
		if err != nil {
			return nil, err
		}
		t.Code = code
	}
	return t, nil
}

// Check runs the specheck layer matching the target's stage and returns
// its violations. For StageSchedule the caller must have snapshotted the
// memory order before mutating (see Mutator.Run, which handles it).
func (t *Target) Check(before specheck.MemOrder) []specheck.Violation {
	pass := "mutate-" + t.Stage.String()
	switch t.Stage {
	case StageAnnotated:
		vs := specheck.CheckAnnotated(t.Prog, t.Env, pass)
		return append(vs, specheck.CheckFlags(t.Prog, t.Env, pass)...)
	case StageSSA:
		var vs []specheck.Violation
		for _, fn := range t.Prog.Funcs {
			vs = append(vs, specheck.CheckSSAFunc(fn, pass)...)
		}
		return vs
	case StagePostPRE:
		var vs []specheck.Violation
		for _, fn := range t.Prog.Funcs {
			vs = append(vs, specheck.CheckPostSSA(fn, pass)...)
		}
		return vs
	case StageSchedule:
		return specheck.CheckSchedule(t.Prog, before, pass)
	case StageMachine:
		vs := specheck.CheckMachine(t.Code, pass)
		return append(vs, specheck.CheckLeaks(t.Code, pass)...)
	}
	return nil
}

// A Mutator plants one class of speculation bug. Sites reports how many
// places it applies to in the target; Apply mutates the i-th (0-based).
// Site enumeration is deterministic (program order), so a site index
// from one Build names the same site in a fresh Build of the same
// source.
type Mutator struct {
	Name  string
	Stage Stage
	// What the mutation models and which rule must catch it.
	Doc   string
	Sites func(t *Target) int
	Apply func(t *Target, site int)
}

// Run rebuilds nothing: on a fresh target it applies site i and returns
// the violations the stage's checker reports. StageSchedule snapshots
// the pre-mutation memory order first, so the mutation plays the buggy
// scheduler against the genuine baseline.
func (m *Mutator) Run(t *Target, site int) []specheck.Violation {
	var before specheck.MemOrder
	if m.Stage == StageSchedule {
		before = specheck.SnapshotMemOrder(t.Prog)
	}
	m.Apply(t, site)
	return t.Check(before)
}

// --- site enumeration helpers ---

// eachStmt visits every statement in deterministic program order.
func eachStmt(prog *ir.Program, visit func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt)) {
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for i, s := range b.Stmts {
				visit(fn, b, i, s)
			}
		}
	}
}

// nthStmt drives eachStmt with a countdown: pred decides applicability,
// act fires on the n-th applicable statement. Returns the number of
// applicable statements.
func nthStmt(prog *ir.Program, n int, pred func(s ir.Stmt) bool, act func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt)) int {
	count := 0
	eachStmt(prog, func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt) {
		if !pred(s) {
			return
		}
		if count == n && act != nil {
			act(fn, b, i, s)
		}
		count++
	})
	return count
}

func vvChiIndex(ar *alias.Result, site int, chis []*ir.Chi) int {
	class, ok := ar.SiteClass[site]
	if !ok {
		return -1
	}
	vv, ok := ar.VV[class]
	if !ok {
		return -1
	}
	for i, c := range chis {
		if c.Sym == vv {
			return i
		}
	}
	return -1
}

func vvMuIndex(ar *alias.Result, site int, mus []*ir.Mu) int {
	class, ok := ar.SiteClass[site]
	if !ok {
		return -1
	}
	vv, ok := ar.VV[class]
	if !ok {
		return -1
	}
	for i, m := range mus {
		if m.Sym == vv {
			return i
		}
	}
	return -1
}

// advCheckSyms returns, in program order, the distinct symbols that are
// both fed by an advanced load and consumed by a check load in fn.
func advCheckSyms(fn *ir.Func) []*ir.Sym {
	adv := map[*ir.Sym]bool{}
	chk := map[*ir.Sym]bool{}
	var order []*ir.Sym
	for _, b := range fn.Blocks {
		for _, s := range b.Stmts {
			a, ok := s.(*ir.Assign)
			if !ok {
				continue
			}
			if a.Spec.AdvLoad && !adv[a.Dst.Sym] {
				adv[a.Dst.Sym] = true
				order = append(order, a.Dst.Sym)
			}
			if a.Spec.CheckLoad {
				chk[a.Dst.Sym] = true
			}
		}
	}
	var both []*ir.Sym
	for _, s := range order {
		if chk[s] {
			both = append(both, s)
		}
	}
	return both
}

// loadShapedCheck reports whether a is a check load that codegen lowers
// through its load path (mirrors specheck's loadShaped filter).
func loadShapedCheck(a *ir.Assign) bool {
	if !a.Spec.CheckLoad {
		return false
	}
	switch a.RK {
	case ir.RHSLoad:
		return true
	case ir.RHSCopy:
		r, ok := a.A.(*ir.Ref)
		return ok && r.Sym.InMemory()
	}
	return false
}

// fencedLoadPairs enumerates (block, fenceIdx, loadIdx) pairs where a
// store/barrier precedes a load in the same block — the pairs a buggy
// scheduler could swap.
type fencedPair struct {
	b          *ir.Block
	fence, load int
}

func fencedLoadPairs(prog *ir.Program) []fencedPair {
	var pairs []fencedPair
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			fence := -1
			for i, s := range b.Stmts {
				switch k := stmtScheduleKind(s); k {
				case 2: // fence
					fence = i
				case 1: // load
					if fence >= 0 {
						pairs = append(pairs, fencedPair{b, fence, i})
					}
				}
			}
		}
	}
	return pairs
}

// stmtScheduleKind is the mutator-side mirror of the schedule checker's
// classification: 2 = fence (store/call/print/alloc), 1 = load, 0 = other.
// ALAT-register copies are deliberately not needed here — hoisting a
// plain load past a store is already a contract violation.
func stmtScheduleKind(s ir.Stmt) int {
	switch t := s.(type) {
	case *ir.Assign:
		if t.Dst.Sym.InMemory() {
			return 2
		}
		switch t.RK {
		case ir.RHSLoad:
			return 1
		case ir.RHSAlloc:
			return 2
		case ir.RHSCopy:
			if r, ok := t.A.(*ir.Ref); ok && r.Sym.InMemory() {
				return 1
			}
		}
	case *ir.IStore, *ir.Call, *ir.Print:
		return 2
	}
	return 0
}

// checkInstrs returns the indices of ld.c/ldf.c instructions of every
// function in sorted-name program order, as (func, instr) pairs.
type machineSite struct {
	fn    *machine.FuncCode
	instr int
}

func checkInstrs(code *machine.Program) []machineSite {
	var sites []machineSite
	for _, name := range sortedFuncNames(code) {
		fc := code.Funcs[name]
		for i, in := range fc.Instrs {
			if in.Op == machine.OpLdC || in.Op == machine.OpLdFC {
				sites = append(sites, machineSite{fc, i})
			}
		}
	}
	return sites
}

// checkWebs enumerates the (function, register) coverage webs: each
// register of a function that at least one ld.c/ldf.c validates.
type checkWeb struct {
	fn  *machine.FuncCode
	reg int
}

func checkWebs(code *machine.Program) []checkWeb {
	var webs []checkWeb
	for _, name := range sortedFuncNames(code) {
		fc := code.Funcs[name]
		seen := map[int]bool{}
		for _, in := range fc.Instrs {
			if (in.Op == machine.OpLdC || in.Op == machine.OpLdFC) && !seen[in.Rd] {
				seen[in.Rd] = true
				webs = append(webs, checkWeb{fc, in.Rd})
			}
		}
	}
	return webs
}

// leakSites enumerates, in sorted-name program order, the unchecked
// speculation sites of every function: ld.c/ldf.c instructions whose
// in-state is provider ∧ crossed ∧ ¬validated on the checked register —
// the exact points where sliding a consumer above the check (or
// removing the check) manufactures a speculative leak. The leak-shaped
// mutators below are all seeded here, so each one is a guaranteed true
// positive for Layer 3 by construction. Mutants are analyzed, never
// executed, so mutations may fabricate loads whose address register
// holds a non-address value.
func leakSites(code *machine.Program) []machineSite {
	var sites []machineSite
	for _, name := range sortedFuncNames(code) {
		fc := code.Funcs[name]
		for _, i := range specheck.UncheckedSpecSites(fc) {
			sites = append(sites, machineSite{fc, i})
		}
	}
	return sites
}

func sortedFuncNames(code *machine.Program) []string {
	names := make([]string, 0, len(code.Funcs))
	for name := range code.Funcs {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// All returns the mutator suite.
func All() []*Mutator {
	return []*Mutator{
		{
			Name: "drop-vv-chi", Stage: StageAnnotated,
			Doc: "removes an indirect store's virtual-variable chi — the may-def vanishes and later phases would wrongly treat the store as irrelevant; caught by missing-vv-chi",
			Sites: func(t *Target) int {
				return nthStmt(t.Prog, -1, func(s ir.Stmt) bool {
					st, ok := s.(*ir.IStore)
					return ok && st.Site != 0 && vvChiIndex(t.Env.Alias, st.Site, st.Chis) >= 0
				}, nil)
			},
			Apply: func(t *Target, site int) {
				nthStmt(t.Prog, site, func(s ir.Stmt) bool {
					st, ok := s.(*ir.IStore)
					return ok && st.Site != 0 && vvChiIndex(t.Env.Alias, st.Site, st.Chis) >= 0
				}, func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt) {
					st := s.(*ir.IStore)
					k := vvChiIndex(t.Env.Alias, st.Site, st.Chis)
					st.Chis = append(st.Chis[:k:k], st.Chis[k+1:]...)
				})
			},
		},
		{
			Name: "drop-vv-mu", Stage: StageAnnotated,
			Doc: "removes an indirect load's virtual-variable mu — the load loses its HSSA value name; caught by missing-vv-mu",
			Sites: func(t *Target) int {
				return nthStmt(t.Prog, -1, func(s ir.Stmt) bool {
					a, ok := s.(*ir.Assign)
					return ok && a.RK == ir.RHSLoad && a.Site != 0 && vvMuIndex(t.Env.Alias, a.Site, a.Mus) >= 0
				}, nil)
			},
			Apply: func(t *Target, site int) {
				nthStmt(t.Prog, site, func(s ir.Stmt) bool {
					a, ok := s.(*ir.Assign)
					return ok && a.RK == ir.RHSLoad && a.Site != 0 && vvMuIndex(t.Env.Alias, a.Site, a.Mus) >= 0
				}, func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt) {
					a := s.(*ir.Assign)
					k := vvMuIndex(t.Env.Alias, a.Site, a.Mus)
					a.Mus = append(a.Mus[:k:k], a.Mus[k+1:]...)
				})
			},
		},
		{
			Name: "duplicate-chi", Stage: StageAnnotated,
			Doc: "names the same symbol twice in a chi list — a malformed may-def set; caught by duplicate-list-entry",
			Sites: func(t *Target) int {
				return nthStmt(t.Prog, -1, func(s ir.Stmt) bool {
					st, ok := s.(*ir.IStore)
					return ok && len(st.Chis) > 0
				}, nil)
			},
			Apply: func(t *Target, site int) {
				nthStmt(t.Prog, site, func(s ir.Stmt) bool {
					st, ok := s.(*ir.IStore)
					return ok && len(st.Chis) > 0
				}, func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt) {
					st := s.(*ir.IStore)
					dup := *st.Chis[0]
					st.Chis = append(st.Chis, &dup)
				})
			},
		},
		{
			Name: "flip-chi-flag", Stage: StageAnnotated,
			Doc: "inverts a chi's speculation flag — a highly-likely update becomes ignorable (unsound elision) or vice versa; caught by wrong-chi-flag",
			Sites: func(t *Target) int {
				return nthStmt(t.Prog, -1, func(s ir.Stmt) bool {
					st, ok := s.(*ir.IStore)
					return ok && st.Site != 0 && len(st.Chis) > 0
				}, nil)
			},
			Apply: func(t *Target, site int) {
				nthStmt(t.Prog, site, func(s ir.Stmt) bool {
					st, ok := s.(*ir.IStore)
					return ok && st.Site != 0 && len(st.Chis) > 0
				}, func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt) {
					chi := s.(*ir.IStore).Chis[0]
					chi.Spec = !chi.Spec
				})
			},
		},
		{
			Name: "flip-mu-flag", Stage: StageAnnotated,
			Doc: "inverts a load mu's speculation flag against the profile policy; caught by wrong-mu-flag",
			Sites: func(t *Target) int {
				return nthStmt(t.Prog, -1, func(s ir.Stmt) bool {
					a, ok := s.(*ir.Assign)
					return ok && a.RK == ir.RHSLoad && a.Site != 0 && len(a.Mus) > 0
				}, nil)
			},
			Apply: func(t *Target, site int) {
				nthStmt(t.Prog, site, func(s ir.Stmt) bool {
					a, ok := s.(*ir.Assign)
					return ok && a.RK == ir.RHSLoad && a.Site != 0 && len(a.Mus) > 0
				}, func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt) {
					mu := s.(*ir.Assign).Mus[0]
					mu.Spec = !mu.Spec
				})
			},
		},
		{
			Name: "corrupt-phi-arg", Stage: StageSSA,
			Doc: "points a phi argument at an SSA version that no definition produces; caught by def-use",
			Sites: func(t *Target) int {
				n := 0
				for _, fn := range t.Prog.Funcs {
					for _, b := range fn.Blocks {
						for _, p := range b.Phis {
							if len(p.Args) > 0 {
								n++
							}
						}
					}
				}
				return n
			},
			Apply: func(t *Target, site int) {
				n := 0
				for _, fn := range t.Prog.Funcs {
					for _, b := range fn.Blocks {
						for _, p := range b.Phis {
							if len(p.Args) == 0 {
								continue
							}
							if n == site {
								p.Args[0] = &ir.Ref{Sym: p.Args[0].Sym, Ver: 99999}
								return
							}
							n++
						}
					}
				}
			},
		},
		{
			Name: "use-undef-version", Stage: StageSSA,
			Doc: "rewrites an operand to an SSA version that was never defined; caught by def-use",
			Sites: func(t *Target) int {
				return nthStmt(t.Prog, -1, func(s ir.Stmt) bool {
					a, ok := s.(*ir.Assign)
					if !ok {
						return false
					}
					r, ok := a.A.(*ir.Ref)
					return ok && r.Ver > 0
				}, nil)
			},
			Apply: func(t *Target, site int) {
				nthStmt(t.Prog, site, func(s ir.Stmt) bool {
					a, ok := s.(*ir.Assign)
					if !ok {
						return false
					}
					r, ok := a.A.(*ir.Ref)
					return ok && r.Ver > 0
				}, func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt) {
					a := s.(*ir.Assign)
					r := a.A.(*ir.Ref)
					a.A = &ir.Ref{Sym: r.Sym, Ver: r.Ver + 99999}
				})
			},
		},
		{
			Name: "swap-def-use", Stage: StageSSA,
			Doc: "moves a definition below a same-block use of it — the def no longer dominates the use; caught by def-use",
			Sites: func(t *Target) int {
				return len(defUsePairs(t.Prog))
			},
			Apply: func(t *Target, site int) {
				pairs := defUsePairs(t.Prog)
				p := pairs[site]
				p.b.Stmts[p.def], p.b.Stmts[p.use] = p.b.Stmts[p.use], p.b.Stmts[p.def]
			},
		},
		{
			Name: "unflag-adv-load", Stage: StagePostPRE,
			Doc: "clears every AdvLoad flag feeding a checked register — the ld.c validates an ALAT entry nothing allocates; caught by check-without-provider",
			Sites: func(t *Target) int {
				n := 0
				for _, fn := range t.Prog.Funcs {
					n += len(advCheckSyms(fn))
				}
				return n
			},
			Apply: func(t *Target, site int) {
				n := 0
				for _, fn := range t.Prog.Funcs {
					for _, sym := range advCheckSyms(fn) {
						if n == site {
							for _, b := range fn.Blocks {
								for _, s := range b.Stmts {
									if a, ok := s.(*ir.Assign); ok && a.Dst.Sym == sym && a.Spec.AdvLoad {
										a.Spec.AdvLoad = false
									}
								}
							}
							return
						}
						n++
					}
				}
			},
		},
		{
			Name: "retarget-check", Stage: StagePostPRE,
			Doc: "moves a check load onto a fresh register no advanced load feeds — the IR-level twin of the retargeted ld.c; caught by check-without-provider",
			Sites: func(t *Target) int {
				return nthStmt(t.Prog, -1, func(s ir.Stmt) bool {
					a, ok := s.(*ir.Assign)
					return ok && loadShapedCheck(a)
				}, nil)
			},
			Apply: func(t *Target, site int) {
				nthStmt(t.Prog, site, func(s ir.Stmt) bool {
					a, ok := s.(*ir.Assign)
					return ok && loadShapedCheck(a)
				}, func(fn *ir.Func, b *ir.Block, i int, s ir.Stmt) {
					a := s.(*ir.Assign)
					a.Dst = &ir.Ref{Sym: fn.NewTemp(a.Dst.Sym.Type)}
				})
			},
		},
		{
			Name: "hoist-load-past-store", Stage: StageSchedule,
			Doc: "swaps a load with an earlier store in its block, as a buggy scheduler would — the load now reads memory the store has not yet written; caught by load-crossed-store",
			Sites: func(t *Target) int {
				return len(fencedLoadPairs(t.Prog))
			},
			Apply: func(t *Target, site int) {
				pairs := fencedLoadPairs(t.Prog)
				p := pairs[site]
				p.b.Stmts[p.fence], p.b.Stmts[p.load] = p.b.Stmts[p.load], p.b.Stmts[p.fence]
			},
		},
		{
			Name: "delete-check-machine", Stage: StageMachine,
			Doc: "replaces every ld.c of one register in one function with nops — the classic deleted check: the advanced load's value is then consumed with a store possibly in between. Deletion is per coverage web (all checks of the register), since a single stacked check's removal is masked by the next check and is genuinely harmless; caught by use-crosses-store",
			Sites: func(t *Target) int {
				return len(checkWebs(t.Code))
			},
			Apply: func(t *Target, site int) {
				w := checkWebs(t.Code)[site]
				for i, in := range w.fn.Instrs {
					if (in.Op == machine.OpLdC || in.Op == machine.OpLdFC) && in.Rd == w.reg {
						w.fn.Instrs[i] = machine.Instr{Op: machine.OpNop}
					}
				}
			},
		},
		{
			Name: "retarget-check-machine", Stage: StageMachine,
			Doc: "points a ld.c at a register no advanced load feeds; caught by check-without-provider",
			Sites: func(t *Target) int {
				return len(checkInstrs(t.Code))
			},
			Apply: func(t *Target, site int) {
				s := checkInstrs(t.Code)[site]
				s.fn.Instrs[s.instr].Rd = s.fn.NumRegs + 7
			},
		},
		{
			Name: "reorder-sink-above-check", Stage: StageMachine,
			Doc: "slides a branch sink on the speculative register to just above its ld.c, as a buggy scheduler would — the condition reads a value a store has crossed and nothing has validated; caught by speculative-leak",
			Sites: func(t *Target) int {
				return len(leakSites(t.Code))
			},
			Apply: func(t *Target, site int) {
				s := leakSites(t.Code)[site]
				pos := harden.InsertBefore(s.fn, map[int]machine.Instr{
					s.instr: {Op: machine.OpBnez, Rs: s.fn.Instrs[s.instr].Rd, Target: -1},
				})
				p := pos[s.instr]
				s.fn.Instrs[p].Target = p + 1
			},
		},
		{
			Name: "delete-check-address-sink", Stage: StageMachine,
			Doc: "replaces a ld.c with a plain load ADDRESSED BY the speculative register — the check vanishes and the unvalidated value steers memory traffic in the same breath; caught by speculative-leak",
			Sites: func(t *Target) int {
				return len(leakSites(t.Code))
			},
			Apply: func(t *Target, site int) {
				s := leakSites(t.Code)[site]
				fresh := s.fn.NumRegs
				s.fn.NumRegs++
				s.fn.Instrs[s.instr] = machine.Instr{Op: machine.OpLd, Rd: fresh, Rs: s.fn.Instrs[s.instr].Rd}
			},
		},
		{
			Name: "retarget-check-past-sink", Stage: StageMachine,
			Doc: "moves a ld.c onto a fresh register and drops a branch on the original register just below it — the consumer now sits past a check that no longer validates what it reads; caught by speculative-leak (and check-without-provider for the stray check)",
			Sites: func(t *Target) int {
				return len(leakSites(t.Code))
			},
			Apply: func(t *Target, site int) {
				s := leakSites(t.Code)[site]
				rd := s.fn.Instrs[s.instr].Rd
				fresh := s.fn.NumRegs
				s.fn.NumRegs++
				s.fn.Instrs[s.instr].Rd = fresh
				after := s.instr + 1
				pos := harden.InsertBefore(s.fn, map[int]machine.Instr{
					after: {Op: machine.OpBnez, Rs: rd, Target: -1},
				})
				p := pos[after]
				s.fn.Instrs[p].Target = p + 1
			},
		},
	}
}

// defUsePairs finds same-block (def, use) statement index pairs where
// the use statement's A operand reads exactly the version the def
// statement's Dst produces, and the two are distinct statements.
type defUsePair struct {
	b        *ir.Block
	def, use int
}

func defUsePairs(prog *ir.Program) []defUsePair {
	var pairs []defUsePair
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for i, s := range b.Stmts {
				d, ok := s.(*ir.Assign)
				if !ok || d.Dst.Sym.InMemory() || d.Dst.Ver <= 0 {
					continue
				}
				for j := i + 1; j < len(b.Stmts); j++ {
					u, ok := b.Stmts[j].(*ir.Assign)
					if !ok {
						continue
					}
					if r, ok := u.A.(*ir.Ref); ok && r.Sym == d.Dst.Sym && r.Ver == d.Dst.Ver {
						pairs = append(pairs, defUsePair{b, i, j})
						break
					}
				}
			}
		}
	}
	return pairs
}
