package mutate

import (
	"testing"

	"repro/internal/workloads"
)

// benchSources picks workloads whose pipelines generate speculative
// check loads (the mutation surface). equake is the paper's §5.1 case
// study; mcf adds pointer-chasing with calls.
func benchSources(t *testing.T) []workloads.Workload {
	t.Helper()
	var out []workloads.Workload
	for _, name := range []string{"equake", "mcf"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		out = append(out, w)
	}
	return out
}

// TestCleanWithoutMutation guards against a checker that cries wolf:
// every stage's checker must accept the unmutated pipeline.
func TestCleanWithoutMutation(t *testing.T) {
	for _, w := range benchSources(t) {
		for _, stage := range []Stage{StageAnnotated, StageSSA, StagePostPRE, StageMachine} {
			tgt, err := Build(w.Src, w.ProfileArgs, stage)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", w.Name, stage, err)
			}
			if vs := tgt.Check(nil); len(vs) > 0 {
				t.Errorf("%s/%s: unmutated pipeline reported dirty: %v", w.Name, stage, vs[0])
			}
		}
	}
}

// TestEveryMutantDetected is the core detection guarantee: each mutator
// must be applicable on at least one workload, and specheck must flag
// every single application.
func TestEveryMutantDetected(t *testing.T) {
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			applied := 0
			for _, w := range benchSources(t) {
				probe, err := Build(w.Src, w.ProfileArgs, m.Stage)
				if err != nil {
					t.Fatalf("%s: build: %v", w.Name, err)
				}
				sites := m.Sites(probe)
				for site := 0; site < sites; site++ {
					tgt, err := Build(w.Src, w.ProfileArgs, m.Stage)
					if err != nil {
						t.Fatalf("%s: rebuild: %v", w.Name, err)
					}
					vs := m.Run(tgt, site)
					if len(vs) == 0 {
						t.Errorf("%s: site %d of %d escaped detection (%s)",
							w.Name, site, sites, m.Doc)
						continue
					}
					applied++
				}
			}
			if applied == 0 {
				t.Fatalf("mutator never applicable on any workload — the suite has a blind spot")
			}
		})
	}
}
