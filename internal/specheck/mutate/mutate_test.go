package mutate

import (
	"strings"
	"testing"

	"repro/internal/harden"
	"repro/internal/specheck"
	"repro/internal/workloads"
)

// benchSources picks workloads whose pipelines generate speculative
// check loads (the mutation surface). equake is the paper's §5.1 case
// study; mcf adds pointer-chasing with calls.
func benchSources(t *testing.T) []workloads.Workload {
	t.Helper()
	var out []workloads.Workload
	for _, name := range []string{"equake", "mcf"} {
		w, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		out = append(out, w)
	}
	return out
}

// TestCleanWithoutMutation guards against a checker that cries wolf:
// every stage's checker must accept the unmutated pipeline.
func TestCleanWithoutMutation(t *testing.T) {
	for _, w := range benchSources(t) {
		for _, stage := range []Stage{StageAnnotated, StageSSA, StagePostPRE, StageMachine} {
			tgt, err := Build(w.Src, w.ProfileArgs, stage)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", w.Name, stage, err)
			}
			if vs := tgt.Check(nil); len(vs) > 0 {
				t.Errorf("%s/%s: unmutated pipeline reported dirty: %v", w.Name, stage, vs[0])
			}
		}
	}
}

// TestEveryMutantDetected is the core detection guarantee: each mutator
// must be applicable on at least one workload, and specheck must flag
// every single application.
func TestEveryMutantDetected(t *testing.T) {
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			applied := 0
			for _, w := range benchSources(t) {
				probe, err := Build(w.Src, w.ProfileArgs, m.Stage)
				if err != nil {
					t.Fatalf("%s: build: %v", w.Name, err)
				}
				sites := m.Sites(probe)
				for site := 0; site < sites; site++ {
					tgt, err := Build(w.Src, w.ProfileArgs, m.Stage)
					if err != nil {
						t.Fatalf("%s: rebuild: %v", w.Name, err)
					}
					vs := m.Run(tgt, site)
					if len(vs) == 0 {
						t.Errorf("%s: site %d of %d escaped detection (%s)",
							w.Name, site, sites, m.Doc)
						continue
					}
					applied++
				}
			}
			if applied == 0 {
				t.Fatalf("mutator never applicable on any workload — the suite has a blind spot")
			}
		})
	}
}

// TestLeakMutantsClosedByHardening closes the loop on the leak-shaped
// mutators: every seeded leak must not only be detected (covered by
// TestEveryMutantDetected) but be reported under the speculative-leak
// rule specifically, and the mitigation pass must drive the mutant back
// to a Layer-3-clean program under both policies. The unmutated builds
// must be leak-clean too — hardening them is a no-op.
func TestLeakMutantsClosedByHardening(t *testing.T) {
	leakMutators := map[string]bool{
		"reorder-sink-above-check":  true,
		"delete-check-address-sink": true,
		"retarget-check-past-sink":  true,
	}
	for _, w := range benchSources(t) {
		clean, err := Build(w.Src, w.ProfileArgs, StageMachine)
		if err != nil {
			t.Fatalf("%s: build: %v", w.Name, err)
		}
		if leaks := specheck.FindLeaks(clean.Code); len(leaks) > 0 {
			t.Fatalf("%s: unmutated build leaks: %v", w.Name, leaks[0])
		}
		for _, pol := range []harden.Policy{harden.PolicyFence, harden.PolicyHoist} {
			noop := clean.Code.Clone()
			rep, err := harden.Apply(noop, pol)
			if err != nil {
				t.Fatalf("%s %s: %v", w.Name, pol, err)
			}
			if rep.FencesInserted+rep.ChecksHoisted != 0 {
				t.Fatalf("%s %s: hardening a clean build inserted mitigations: %+v", w.Name, pol, rep)
			}
		}
	}
	for _, m := range All() {
		if !leakMutators[m.Name] {
			continue
		}
		delete(leakMutators, m.Name)
		m := m
		t.Run(m.Name, func(t *testing.T) {
			applied := 0
			for _, w := range benchSources(t) {
				probe, err := Build(w.Src, w.ProfileArgs, m.Stage)
				if err != nil {
					t.Fatalf("%s: build: %v", w.Name, err)
				}
				sites := m.Sites(probe)
				for site := 0; site < sites; site++ {
					tgt, err := Build(w.Src, w.ProfileArgs, m.Stage)
					if err != nil {
						t.Fatalf("%s: rebuild: %v", w.Name, err)
					}
					m.Apply(tgt, site)
					vs := specheck.CheckLeaks(tgt.Code, "mutant")
					if len(vs) == 0 {
						t.Errorf("%s site %d: seeded leak escaped Layer 3 (%s)", w.Name, site, m.Doc)
						continue
					}
					for _, v := range vs {
						if v.Rule != "speculative-leak" {
							t.Errorf("%s site %d: unexpected rule %q: %s", w.Name, site, v.Rule, v.Msg)
						}
						if !strings.Contains(v.Msg, "sink") {
							t.Errorf("%s site %d: message lacks sink context: %s", w.Name, site, v.Msg)
						}
					}
					applied++
					for _, pol := range []harden.Policy{harden.PolicyFence, harden.PolicyHoist} {
						mutant := tgt.Code.Clone()
						if _, err := harden.Apply(mutant, pol); err != nil {
							t.Fatalf("%s site %d %s: %v", w.Name, site, pol, err)
						}
						if res := specheck.FindLeaks(mutant); len(res) > 0 {
							t.Errorf("%s site %d %s: %d residual leaks after hardening", w.Name, site, pol, len(res))
						}
					}
				}
			}
			if applied == 0 {
				t.Fatalf("leak mutator never applicable — the suite has a blind spot")
			}
		})
	}
	for name := range leakMutators {
		t.Errorf("leak mutator %s missing from All()", name)
	}
}
