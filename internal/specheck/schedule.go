package specheck

import (
	"fmt"

	"repro/internal/ir"
)

// The schedule checker: the list scheduler's memory contract is that
// stores, calls, prints and allocations ("fences") stay ordered with
// every other memory operation, while loads may reorder freely among
// themselves between fences. A copy out of an ALAT register (the point
// where a speculative load's value is consumed) counts as a load, since
// moving an aliasing store across it would let a stale value escape the
// check. SnapshotMemOrder records the per-block memory-relevant
// statements before scheduling; CheckSchedule proves the scheduled
// program kept every fence in order and every load inside its original
// inter-fence segment.

// MemOrder is a per-block snapshot of memory-relevant statement identity,
// in program order.
type MemOrder map[*ir.Block][]ir.Stmt

// memKind classifies a statement for the schedule check.
type memKind int

const (
	memOther memKind = iota // not memory-relevant
	kindLoad                // may reorder with other loads, never cross a fence
	kindFence               // store, call, print, allocation: totally ordered
)

// stmtKind mirrors codegen's stmtMemClass: fences are direct and
// indirect stores, calls, prints and allocations; loads are indirect
// loads, reads of memory-resident scalars and copies out of ALAT
// registers.
func stmtKind(s ir.Stmt, alat map[*ir.Sym]bool) memKind {
	switch t := s.(type) {
	case *ir.Assign:
		if t.Dst.Sym.InMemory() {
			return kindFence
		}
		switch t.RK {
		case ir.RHSLoad:
			return kindLoad
		case ir.RHSAlloc:
			return kindFence
		case ir.RHSCopy:
			if r, ok := t.A.(*ir.Ref); ok && (r.Sym.InMemory() || alat[r.Sym]) {
				return kindLoad
			}
		}
		return memOther
	case *ir.IStore, *ir.Call, *ir.Print:
		return kindFence
	}
	return memOther
}

// alatRegs collects the destinations of advanced and check loads — the
// registers whose consuming copies are ordered with stores.
func alatRegs(fn *ir.Func) map[*ir.Sym]bool {
	regs := map[*ir.Sym]bool{}
	for _, b := range fn.Blocks {
		for _, s := range b.Stmts {
			if a, ok := s.(*ir.Assign); ok && (a.Spec.AdvLoad || a.Spec.CheckLoad) {
				regs[a.Dst.Sym] = true
			}
		}
	}
	return regs
}

// SnapshotMemOrder records the memory-relevant statement order of every
// block, to be compared against the program after scheduling.
func SnapshotMemOrder(prog *ir.Program) MemOrder {
	snap := MemOrder{}
	for _, f := range prog.Funcs {
		alat := alatRegs(f)
		for _, b := range f.Blocks {
			var seq []ir.Stmt
			for _, s := range b.Stmts {
				if stmtKind(s, alat) != memOther {
					seq = append(seq, s)
				}
			}
			if len(seq) > 0 {
				snap[b] = seq
			}
		}
	}
	return snap
}

// segment splits a memory-relevant sequence into its fence subsequence
// and, for every load, the index of the inter-fence segment it sits in
// (segment k = after the k-th fence).
func segment(seq []ir.Stmt, alat map[*ir.Sym]bool) (fences []ir.Stmt, loadSeg map[ir.Stmt]int) {
	loadSeg = map[ir.Stmt]int{}
	for _, s := range seq {
		if stmtKind(s, alat) == kindFence {
			fences = append(fences, s)
		} else {
			loadSeg[s] = len(fences)
		}
	}
	return fences, loadSeg
}

// CheckSchedule proves the scheduler honoured its memory contract in
// every block: the fences of each block appear exactly as snapshotted,
// in the snapshot's order, and every load stayed between the same two
// fences it started between. A load hoisted past an aliasing store
// without the AdvLoad protocol, or a store sunk past a check's consuming
// copy, lands in a different segment and is reported.
func CheckSchedule(prog *ir.Program, before MemOrder, pass string) []Violation {
	var vs []Violation
	for _, f := range prog.Funcs {
		alat := alatRegs(f)
		for _, b := range f.Blocks {
			var after []ir.Stmt
			for _, s := range b.Stmts {
				if stmtKind(s, alat) != memOther {
					after = append(after, s)
				}
			}
			add := func(rule, format string, args ...any) {
				vs = append(vs, Violation{
					Pass: pass, Func: f.Name, Block: b.ID, Instr: -1,
					Rule: rule, Msg: fmt.Sprintf(format, args...),
				})
			}
			want := before[b]
			if len(after) != len(want) {
				add("memory-op-count",
					"scheduling changed the number of memory operations (%d before, %d after)",
					len(want), len(after))
				continue
			}
			wantFences, wantSeg := segment(want, alat)
			gotFences, gotSeg := segment(after, alat)
			if len(wantFences) != len(gotFences) {
				add("memory-op-count",
					"scheduling changed the number of stores/barriers (%d before, %d after)",
					len(wantFences), len(gotFences))
				continue
			}
			fenceOK := true
			for i := range wantFences {
				if wantFences[i] != gotFences[i] {
					add("store-reordered",
						"scheduling reordered stores/barriers: position %d holds [%s], expected [%s]",
						i, gotFences[i], wantFences[i])
					fenceOK = false
					break
				}
			}
			if !fenceOK {
				continue
			}
			for s, seg := range wantSeg {
				got, ok := gotSeg[s]
				if !ok {
					add("memory-op-count", "load [%s] vanished from the block's memory order", s)
					continue
				}
				if got != seg {
					add("load-crossed-store",
						"scheduling moved load [%s] across a store or barrier (segment %d, was %d)",
						s, got, seg)
				}
			}
		}
	}
	return vs
}
