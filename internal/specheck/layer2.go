package specheck

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Layer 2: check-coverage dataflow on the generated machine code. The
// lattice tracks, per virtual register, two facts joined over all CFG
// paths into each instruction:
//
//   - provider (must, AND-meet): on every path, the register's current
//     value was produced by an ALAT-allocating instruction (ld.a/ld.sa)
//     or revalidated by a check (ld.c) with no ordinary redefinition
//     since;
//   - validated (must, AND-meet): on every path, a check load has
//     confirmed (or recovered) the register's value since its advanced
//     load — the value is architecturally committed, not speculative;
//   - crossed (may, OR-meet): on some path since the provider, a
//     potentially-aliasing store or a call (whose callee may store)
//     executed, so the ALAT entry may be gone and the register may hold a
//     stale speculative value.
//
// Two rules are enforced at the fixpoint:
//
//   - check-without-provider: an ld.c must have a must-reaching advanced
//     load (or earlier check) in its register — otherwise it validates an
//     entry that was never allocated on some path;
//   - use-crosses-store: reading a register while provider ∧ crossed ∧
//     ¬validated consumes a possibly-stale speculative value that no
//     check ever confirmed — the exact hole a deleted or retargeted
//     check opens. The rule fires only when the register's whole web
//     has no ld.c anywhere in the function (see below).
//
// The ¬validated term is what makes the rule precise enough for real
// PRE output: once an ld.c has run, the register holds a correct,
// committed value, and a later reuse of it across a store is the alias
// analysis' no-alias claim (verified at the IR layer against the χ
// lists), not a speculation claim. Without that term, any value that is
// checked once and then legitimately reused past a provably-disjoint
// store (e.g. a direct store to a different global) would be a false
// positive — the fuzzer finds such programs readily.
//
// The no-check-in-web condition handles the remaining precision gap:
// this layer sees stores, not alias classes, so it cannot tell a
// disjoint store from an aliasing one. PRE legitimately emits webs
// where only one of several joining paths needs a check (the others
// never cross an aliasing store), and a path-sensitive all-stores rule
// flags those. What it CAN decide without alias information: a web
// whose advanced load crosses any store on the way to a use and that
// contains no check at all is definitely broken, because speculative
// PRE always converts the eliminated occurrence that motivated the
// ld.a into an ld.c. That is precisely the shape check deletion
// produces. Misplaced-but-present checks are the IR layer's
// jurisdiction (flag re-derivation against the χ lists), and
// scheduler-induced reorderings are CheckSchedule's.
//
// The ALAT is frame-tagged in the VM (a callee cannot satisfy a caller's
// check), so the analysis is safely intraprocedural; calls are modeled as
// potential stores. Allocations and prints do not invalidate ALAT
// entries (mirroring the VM) and so do not set crossed.

// regState is the per-instruction dataflow fact.
type regState struct {
	provider  []bool // must: ALAT entry allocated for this register's value
	validated []bool // must: an ld.c confirmed the value since its ld.a
	crossed   []bool // may: a store/call happened since the provider
}

func newRegState(n int) *regState {
	return &regState{
		provider:  make([]bool, n),
		validated: make([]bool, n),
		crossed:   make([]bool, n),
	}
}

func (s *regState) clone() *regState {
	t := newRegState(len(s.provider))
	copy(t.provider, s.provider)
	copy(t.validated, s.validated)
	copy(t.crossed, s.crossed)
	return t
}

// meet joins o into s (provider/validated AND, crossed OR); reports change.
func (s *regState) meet(o *regState) bool {
	changed := false
	for i := range s.provider {
		if s.provider[i] && !o.provider[i] {
			s.provider[i] = false
			changed = true
		}
		if s.validated[i] && !o.validated[i] {
			s.validated[i] = false
			changed = true
		}
		if !s.crossed[i] && o.crossed[i] {
			s.crossed[i] = true
			changed = true
		}
	}
	return changed
}

// instrSuccs computes the intra-function CFG at instruction granularity.
func instrSuccs(fc *machine.FuncCode) [][]int {
	n := len(fc.Instrs)
	succs := make([][]int, n)
	for i, in := range fc.Instrs {
		switch in.Op {
		case machine.OpBr:
			succs[i] = []int{in.Target}
		case machine.OpBeqz, machine.OpBnez:
			if i+1 < n {
				succs[i] = []int{i + 1, in.Target}
			} else {
				succs[i] = []int{in.Target}
			}
		case machine.OpRet, machine.OpHalt:
			// no successors
		default:
			if i+1 < n {
				succs[i] = []int{i + 1}
			}
		}
	}
	return succs
}

// instrReads lists the registers an instruction reads.
func instrReads(in machine.Instr) []int {
	switch in.Op {
	case machine.OpMov,
		machine.OpLd, machine.OpLdF, machine.OpLdA, machine.OpLdFA,
		machine.OpLdC, machine.OpLdFC, machine.OpLdS, machine.OpLdFS,
		machine.OpLdSA, machine.OpLdFSA,
		machine.OpNeg, machine.OpNot, machine.OpFNeg,
		machine.OpI2F, machine.OpF2I,
		machine.OpAlloc, machine.OpArg,
		machine.OpBeqz, machine.OpBnez:
		return []int{in.Rs}
	case machine.OpSt, machine.OpStF:
		// Rd is the address register, Rs the stored value — both reads
		return []int{in.Rd, in.Rs}
	case machine.OpAdd, machine.OpSub, machine.OpMul, machine.OpDiv, machine.OpMod,
		machine.OpAnd, machine.OpOr, machine.OpXor, machine.OpShl, machine.OpShr,
		machine.OpFAdd, machine.OpFSub, machine.OpFMul, machine.OpFDiv,
		machine.OpCmpEQ, machine.OpCmpNE, machine.OpCmpLT, machine.OpCmpLE,
		machine.OpCmpGT, machine.OpCmpGE,
		machine.OpFCmpEQ, machine.OpFCmpNE, machine.OpFCmpLT, machine.OpFCmpLE,
		machine.OpFCmpGT, machine.OpFCmpGE:
		return []int{in.Rs, in.Rt}
	case machine.OpRet:
		if in.Rs >= 0 {
			return []int{in.Rs}
		}
	case machine.OpCall, machine.OpPrint:
		return in.ArgRegs
	}
	return nil
}

// instrDef returns the register an instruction writes, or -1.
func instrDef(in machine.Instr) int {
	switch in.Op {
	case machine.OpMovI, machine.OpMov, machine.OpLEA,
		machine.OpLd, machine.OpLdF, machine.OpLdA, machine.OpLdFA,
		machine.OpLdC, machine.OpLdFC, machine.OpLdS, machine.OpLdFS,
		machine.OpLdSA, machine.OpLdFSA,
		machine.OpAdd, machine.OpSub, machine.OpMul, machine.OpDiv, machine.OpMod,
		machine.OpAnd, machine.OpOr, machine.OpXor, machine.OpShl, machine.OpShr,
		machine.OpNeg, machine.OpNot,
		machine.OpFAdd, machine.OpFSub, machine.OpFMul, machine.OpFDiv, machine.OpFNeg,
		machine.OpCmpEQ, machine.OpCmpNE, machine.OpCmpLT, machine.OpCmpLE,
		machine.OpCmpGT, machine.OpCmpGE,
		machine.OpFCmpEQ, machine.OpFCmpNE, machine.OpFCmpLT, machine.OpFCmpLE,
		machine.OpFCmpGT, machine.OpFCmpGE,
		machine.OpI2F, machine.OpF2I,
		machine.OpAlloc:
		return in.Rd
	case machine.OpCall, machine.OpArg:
		if in.Rd >= 0 {
			return in.Rd
		}
	}
	return -1
}

func isAdvanced(op machine.Opcode) bool {
	switch op {
	case machine.OpLdA, machine.OpLdFA, machine.OpLdSA, machine.OpLdFSA:
		return true
	}
	return false
}

func isCheck(op machine.Opcode) bool {
	return op == machine.OpLdC || op == machine.OpLdFC
}

// transfer applies one instruction to the state in place.
func transfer(s *regState, in machine.Instr) {
	switch {
	case isAdvanced(in.Op):
		// an advanced load allocates a fresh ALAT entry; the value is
		// speculative until an ld.c confirms it
		s.provider[in.Rd] = true
		s.validated[in.Rd] = false
		s.crossed[in.Rd] = false
	case isCheck(in.Op):
		// a check revalidates (or reloads and re-inserts) the entry —
		// from here the register holds a committed value
		s.provider[in.Rd] = true
		s.validated[in.Rd] = true
		s.crossed[in.Rd] = false
	case in.Op == machine.OpSt || in.Op == machine.OpStF || in.Op == machine.OpCall:
		// a store may invalidate any ALAT entry; a call may execute
		// stores in the callee
		for r := range s.provider {
			if s.provider[r] {
				s.crossed[r] = true
			}
		}
		if in.Op == machine.OpCall {
			if d := instrDef(in); d >= 0 {
				s.provider[d] = false
				s.validated[d] = false
				s.crossed[d] = false
			}
		}
	default:
		if d := instrDef(in); d >= 0 {
			s.provider[d] = false
			s.validated[d] = false
			s.crossed[d] = false
		}
	}
}

// CheckMachine runs the check-coverage dataflow over every function of
// the generated program and reports the violations described in the
// package comment. It is pure analysis: the program is not modified.
func CheckMachine(code *machine.Program, pass string) []Violation {
	var vs []Violation
	names := make([]string, 0, len(code.Funcs))
	for name := range code.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vs = append(vs, checkFuncCode(code.Funcs[name], pass)...)
	}
	return vs
}

// funcNumRegs returns the effective register-file size of fc: the
// declared NumRegs widened to cover any out-of-range register index an
// instruction mentions (a retargeted check can point outside the file).
func funcNumRegs(fc *machine.FuncCode) int {
	nregs := fc.NumRegs
	maxReg := func(in machine.Instr) int {
		m := instrDef(in)
		for _, r := range instrReads(in) {
			if r > m {
				m = r
			}
		}
		return m
	}
	for _, in := range fc.Instrs {
		if m := maxReg(in); m >= nregs {
			nregs = m + 1
		}
	}
	return nregs
}

// flowStates runs the Layer 2 forward dataflow to its fixpoint and
// returns the per-instruction in-states (nil for unreachable
// instructions). Layer 3 and the mutation/hardening site enumeration
// reuse it.
func flowStates(fc *machine.FuncCode, nregs int) []*regState {
	n := len(fc.Instrs)
	if n == 0 {
		return nil
	}
	succs := instrSuccs(fc)
	in := make([]*regState, n)
	in[0] = newRegState(nregs)
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[i].clone()
		transfer(out, fc.Instrs[i])
		for _, s := range succs[i] {
			if s < 0 || s >= n {
				continue
			}
			if in[s] == nil {
				in[s] = out.clone()
				work = append(work, s)
			} else if in[s].meet(out) {
				work = append(work, s)
			}
		}
	}
	return in
}

func checkFuncCode(fc *machine.FuncCode, pass string) []Violation {
	n := len(fc.Instrs)
	if n == 0 {
		return nil
	}
	nregs := funcNumRegs(fc)

	// hasCheck[r]: the function contains at least one ld.c targeting r —
	// the web-level evidence that PRE placed this register's checks (their
	// positions are judged by the IR layer, which has the alias classes)
	hasCheck := make([]bool, nregs)
	for _, in := range fc.Instrs {
		if isCheck(in.Op) && in.Rd >= 0 && in.Rd < nregs {
			hasCheck[in.Rd] = true
		}
	}

	in := flowStates(fc, nregs)

	var vs []Violation
	add := func(i int, rule, format string, args ...any) {
		vs = append(vs, Violation{
			Pass: pass, Func: fc.Name, Block: -1, Instr: i,
			Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}
	for i, instr := range fc.Instrs {
		st := in[i]
		if st == nil {
			continue // unreachable
		}
		for _, r := range instrReads(instr) {
			if r >= 0 && r < nregs && st.provider[r] && st.crossed[r] && !st.validated[r] && !hasCheck[r] {
				add(i, "use-crosses-store",
					"[%s] reads r%d: a speculative value whose ALAT entry may have been invalidated by an intervening store, with no check since", instr, r)
			}
		}
		if isCheck(instr.Op) && !st.provider[instr.Rd] {
			add(i, "check-without-provider",
				"[%s] checks r%d but no advanced load reaches it on every path", instr, instr.Rd)
		}
	}
	return vs
}
