package specheck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/profile"
)

// Layer 1: speculative SSA invariants on the IR. The entry points below
// are called by repro.CompileCtx at the pipeline stage named by their
// pass argument; each re-derives the expected state from the alias result
// and flag policy rather than trusting the annotation code under test.

// CheckAnnotated verifies the chi/mu lists against the alias result right
// after annotation (and again after flag assignment): every indirect
// store site carries a χ for its class's virtual variable, every indirect
// load site a μ for it, every direct store to an aliased scalar a χ on
// the scalar's class summary, and no list names a symbol twice or names a
// register-only symbol.
func CheckAnnotated(prog *ir.Program, env *Env, pass string) []Violation {
	ar := env.Alias
	var vs []Violation
	add := func(f *ir.Func, b *ir.Block, rule, format string, args ...any) {
		vs = append(vs, Violation{
			Pass: pass, Func: f.Name, Block: b.ID, Instr: -1,
			Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}
	checkList := func(f *ir.Func, b *ir.Block, what string, syms []*ir.Sym) {
		seen := map[*ir.Sym]bool{}
		for _, s := range syms {
			if s == nil {
				add(f, b, "nil-list-entry", "%s list carries a nil symbol", what)
				continue
			}
			if seen[s] {
				add(f, b, "duplicate-list-entry", "%s list names %s twice", what, s.Name)
			}
			seen[s] = true
			if !s.InMemory() && s.Kind != ir.SymVirtual {
				add(f, b, "register-list-entry", "%s list names register symbol %s", what, s.Name)
			}
		}
	}
	hasSym := func(syms []*ir.Sym, want *ir.Sym) bool {
		for _, s := range syms {
			if s == want {
				return true
			}
		}
		return false
	}
	chiSyms := func(chis []*ir.Chi) []*ir.Sym {
		out := make([]*ir.Sym, len(chis))
		for i, c := range chis {
			out[i] = c.Sym
		}
		return out
	}
	muSyms := func(mus []*ir.Mu) []*ir.Sym {
		out := make([]*ir.Sym, len(mus))
		for i, m := range mus {
			out[i] = m.Sym
		}
		return out
	}

	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				switch t := st.(type) {
				case *ir.Assign:
					// mirrors the annotator: the two conditions are
					// independent — an indirect load into a
					// memory-resident scalar carries both lists
					if t.RK == ir.RHSLoad && t.Site != 0 {
						checkList(f, b, "mu", muSyms(t.Mus))
						class, ok := ar.SiteClass[t.Site]
						if !ok {
							add(f, b, "unknown-site", "load site %d has no alias class", t.Site)
							continue
						}
						if vv, ok := ar.VV[class]; ok && !hasSym(muSyms(t.Mus), vv) {
							add(f, b, "missing-vv-mu",
								"indirect load of class %d lacks a mu for virtual variable %s", class, vv.Name)
						}
					}
					if t.Dst.Sym.InMemory() {
						checkList(f, b, "chi", chiSyms(t.Chis))
						if vv, ok := ar.VV[ar.ClassOfSym[t.Dst.Sym]]; ok && !hasSym(chiSyms(t.Chis), vv) {
							add(f, b, "missing-vv-chi",
								"direct store to aliased %s lacks a chi for virtual variable %s",
								t.Dst.Sym.Name, vv.Name)
						}
					}
				case *ir.IStore:
					if t.Site == 0 {
						continue
					}
					checkList(f, b, "chi", chiSyms(t.Chis))
					class, ok := ar.SiteClass[t.Site]
					if !ok {
						add(f, b, "unknown-site", "store site %d has no alias class", t.Site)
						continue
					}
					if vv, ok := ar.VV[class]; ok && !hasSym(chiSyms(t.Chis), vv) {
						add(f, b, "missing-vv-chi",
							"indirect store of class %d lacks a chi for virtual variable %s", class, vv.Name)
					}
				case *ir.Call:
					checkList(f, b, "chi", chiSyms(t.Chis))
					checkList(f, b, "mu", muSyms(t.Mus))
				}
			}
		}
	}
	return vs
}

// CheckFlags re-derives the expected speculation flag of every chi/mu
// from the (profile, mode) pair the pipeline ran with — the paper's
// §3.2.1/§3.2.2 policy — and reports every disagreement: a χs the policy
// would not have set (stray speculation of a must-alias), a missing χs
// (an update wrongly made ignorable), or a profiled LOC the list lacks
// entirely.
func CheckFlags(prog *ir.Program, env *Env, pass string) []Violation {
	ar, prof := env.Alias, env.Prof
	var vs []Violation
	add := func(f *ir.Func, b *ir.Block, rule, format string, args ...any) {
		vs = append(vs, Violation{
			Pass: pass, Func: f.Name, Block: b.ID, Instr: -1,
			Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}
	// mode and pol are per function: a re-tiered function (Env.FnOverrides)
	// must be re-derived under the override the pipeline assigned its
	// flags with, not the program-wide pair.
	expectChi := func(f *ir.Func, b *ir.Block, chis []*ir.Chi, locs profile.LocSet, total uint64, mode core.Mode, pol core.Policy, fp bool) {
		for _, chi := range chis {
			want := core.SymFlag(f, chi.Sym, locs, total, ar, mode, pol, fp)
			if chi.Spec != want {
				add(f, b, "wrong-chi-flag", "chi on %s flagged %v, policy says %v",
					chi.Sym.Name, chi.Spec, want)
			}
		}
	}
	expectMu := func(f *ir.Func, b *ir.Block, mus []*ir.Mu, locs profile.LocSet, total uint64, mode core.Mode, pol core.Policy, fp bool) {
		for _, mu := range mus {
			want := core.SymFlag(f, mu.Sym, locs, total, ar, mode, pol, fp)
			if mu.Spec != want {
				add(f, b, "wrong-mu-flag", "mu on %s flagged %v, policy says %v",
					mu.Sym.Name, mu.Spec, want)
			}
		}
	}
	// complete checks the §3.2.1 escape hatch: every profiled LOC of the
	// site must appear in the list (AssignFlags adds the missing ones as
	// flagged entries).
	completeChi := func(f *ir.Func, b *ir.Block, chis []*ir.Chi, locs profile.LocSet) {
		if locs == nil {
			return
		}
		have := map[*ir.Sym]bool{}
		for _, chi := range chis {
			have[chi.Sym] = true
		}
		for loc := range locs {
			if sym := ar.LocToSym(f, loc); sym != nil && !have[sym] {
				add(f, b, "missing-profiled-chi", "profiled LOC %s absent from chi list", sym.Name)
			}
		}
	}
	completeMu := func(f *ir.Func, b *ir.Block, mus []*ir.Mu, locs profile.LocSet) {
		if locs == nil {
			return
		}
		have := map[*ir.Sym]bool{}
		for _, mu := range mus {
			have[mu.Sym] = true
		}
		for loc := range locs {
			if sym := ar.LocToSym(f, loc); sym != nil && !have[sym] {
				add(f, b, "missing-profiled-mu", "profiled LOC %s absent from mu list", sym.Name)
			}
		}
	}

	for _, f := range prog.Funcs {
		mode, pol := env.fnModePolicy(f.Name)
		for _, b := range f.Blocks {
			for _, st := range b.Stmts {
				switch t := st.(type) {
				case *ir.Assign:
					// mirrors AssignFlags: the conditions are independent,
					// not exclusive (see CheckAnnotated)
					if t.RK == ir.RHSLoad && t.Site != 0 {
						locs := core.LocsFor(prof, mode, t.Site, false)
						total := core.SiteTotalFor(prof, mode, t.Site)
						fp := t.LoadsFrom != nil && t.LoadsFrom.IsFloat()
						expectMu(f, b, t.Mus, locs, total, mode, pol, fp)
						completeMu(f, b, t.Mus, locs)
					}
					if t.Dst.Sym.InMemory() {
						// a direct store's chi is a weak summary update
						// under speculation, a hard kill otherwise
						for _, chi := range t.Chis {
							if want := mode == core.ModeNone; chi.Spec != want {
								add(f, b, "wrong-chi-flag",
									"direct-store chi on %s flagged %v, policy says %v",
									chi.Sym.Name, chi.Spec, want)
							}
						}
					}
				case *ir.IStore:
					if t.Site == 0 {
						continue
					}
					locs := core.LocsFor(prof, mode, t.Site, true)
					total := core.SiteTotalFor(prof, mode, t.Site)
					fp := t.StoresTo != nil && t.StoresTo.IsFloat()
					expectChi(f, b, t.Chis, locs, total, mode, pol, fp)
					completeChi(f, b, t.Chis, locs)
				case *ir.Call:
					if mode.ProfileGuided() {
						var mod, ref profile.LocSet
						var total uint64
						if prof != nil {
							mod, ref = prof.CallMod[t.Site], prof.CallRef[t.Site]
							total = core.SiteTotalFor(prof, mode, t.Site)
						}
						expectChi(f, b, t.Chis, mod, total, mode, pol, false)
						completeChi(f, b, t.Chis, mod)
						expectMu(f, b, t.Mus, ref, total, mode, pol, false)
					} else {
						for _, chi := range t.Chis {
							if !chi.Spec {
								add(f, b, "wrong-chi-flag",
									"call chi on %s unflagged; call side effects are always highly likely",
									chi.Sym.Name)
							}
						}
						for _, mu := range t.Mus {
							if want := mode == core.ModeNone; mu.Spec != want {
								add(f, b, "wrong-mu-flag", "call mu on %s flagged %v, policy says %v",
									mu.Sym.Name, mu.Spec, want)
							}
						}
					}
				}
			}
		}
	}
	return vs
}

// loadShaped reports whether a statement is a load in the codegen sense —
// an indirect load or a direct read of a memory-resident scalar — and
// returns its address template operand.
func loadShaped(a *ir.Assign) (ir.Operand, bool) {
	switch a.RK {
	case ir.RHSLoad:
		return a.A, true
	case ir.RHSCopy:
		if r, ok := a.A.(*ir.Ref); ok && r.Sym.InMemory() {
			return a.A, true
		}
	}
	return nil, false
}

// checkPairing verifies the advanced-load/check-load protocol on one
// function's statements (valid both in and out of SSA, since the PRE
// temporary is coalesced): a check load must not itself be advanced or
// control-speculative and must target a register some advanced load
// feeds. The pairing is by register only — the ALAT keys on the
// register, and a later PRE round legitimately rewrites one
// occurrence's address computation into a CSE temp the other side does
// not name, so syntactic address identity cannot be required; the
// machine-level dataflow (CheckMachine) proves the register pairing
// holds on every path instead.
func checkPairing(fn *ir.Func, pass string) []Violation {
	var vs []Violation
	add := func(b *ir.Block, rule, format string, args ...any) {
		vs = append(vs, Violation{
			Pass: pass, Func: fn.Name, Block: b.ID, Instr: -1,
			Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}
	advOf := map[*ir.Sym][]*ir.Assign{}
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			a, ok := st.(*ir.Assign)
			if !ok {
				continue
			}
			if _, isLoad := loadShaped(a); isLoad && a.Spec.AdvLoad {
				advOf[a.Dst.Sym] = append(advOf[a.Dst.Sym], a)
			}
		}
	}
	for _, b := range fn.Blocks {
		for _, st := range b.Stmts {
			a, ok := st.(*ir.Assign)
			if !ok || !a.Spec.CheckLoad {
				continue
			}
			if _, isLoad := loadShaped(a); !isLoad {
				continue // a check marker on a non-load never reaches codegen's load path
			}
			if a.Spec.AdvLoad || a.Spec.SpecLoad {
				add(b, "conflicting-flags", "check load %s also flagged %s", a, a.Spec)
			}
			if len(advOf[a.Dst.Sym]) == 0 {
				add(b, "check-without-provider",
					"check load %s targets %s but no advanced load feeds that register",
					a, a.Dst.Sym.Name)
			}
		}
	}
	return vs
}

// CheckSSAFunc verifies one function while it is in SSA form: CFG and
// statement well-formedness, unique definitions, def-dominates-use over
// the dominator tree (including phi arguments against their predecessor),
// and the advanced/check-load pairing.
func CheckSSAFunc(fn *ir.Func, pass string) []Violation {
	var vs []Violation
	structural := func(rule string, err error) {
		if err != nil {
			vs = append(vs, Violation{
				Pass: pass, Func: fn.Name, Block: -1, Instr: -1,
				Rule: rule, Msg: err.Error(),
			})
		}
	}
	structural("invalid-cfg", ir.Verify(fn))
	structural("multiple-defs", ir.VerifySSA(fn))
	structural("def-use", ir.VerifyDefUse(fn))
	return append(vs, checkPairing(fn, pass)...)
}

// CheckPostSSA verifies one function after out-of-SSA conversion: no phis
// or analysis-only annotations may survive, every reference must be
// version-free, and the advanced/check-load pairing must still hold on
// the coalesced registers.
func CheckPostSSA(fn *ir.Func, pass string) []Violation {
	var vs []Violation
	add := func(b *ir.Block, rule, format string, args ...any) {
		vs = append(vs, Violation{
			Pass: pass, Func: fn.Name, Block: b.ID, Instr: -1,
			Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}
	if err := ir.Verify(fn); err != nil {
		vs = append(vs, Violation{
			Pass: pass, Func: fn.Name, Block: -1, Instr: -1,
			Rule: "invalid-cfg", Msg: err.Error(),
		})
	}
	ver := func(b *ir.Block, op ir.Operand, what string) {
		if r, ok := op.(*ir.Ref); ok && r != nil && r.Ver != 0 {
			add(b, "residual-version", "%s %s still carries SSA version %d", what, r.Sym.Name, r.Ver)
		}
	}
	for _, b := range fn.Blocks {
		if len(b.Phis) > 0 {
			add(b, "residual-phi", "%d phi(s) survived out-of-SSA", len(b.Phis))
		}
		for _, st := range b.Stmts {
			switch t := st.(type) {
			case *ir.Assign:
				if len(t.Mus) > 0 || len(t.Chis) > 0 {
					add(b, "residual-annotation", "chi/mu list survived out-of-SSA on %s", t)
				}
				ver(b, t.Dst, "destination")
				ver(b, t.A, "operand")
				if t.B != nil {
					ver(b, t.B, "operand")
				}
			case *ir.IStore:
				if len(t.Chis) > 0 || t.VV != nil {
					add(b, "residual-annotation", "chi/VV survived out-of-SSA on %s", t)
				}
				ver(b, t.Addr, "operand")
				ver(b, t.Val, "operand")
			case *ir.Call:
				if len(t.Mus) > 0 || len(t.Chis) > 0 {
					add(b, "residual-annotation", "chi/mu list survived out-of-SSA on %s", t)
				}
				if t.Dst != nil {
					ver(b, t.Dst, "destination")
				}
				for _, a := range t.Args {
					ver(b, a, "operand")
				}
			case *ir.Print:
				for _, a := range t.Args {
					ver(b, a, "operand")
				}
			}
		}
		if b.Term.Cond != nil {
			ver(b, b.Term.Cond, "branch condition")
		}
		if b.Term.Val != nil {
			ver(b, b.Term.Val, "return value")
		}
	}
	return append(vs, checkPairing(fn, pass)...)
}
