package specheck

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Layer 3: speculative-leak taint analysis on the generated machine
// code. The paper's data speculation executes loads before their safety
// is known, which is exactly the shape of a Spectre-style leak: a
// speculatively-loaded, not-yet-checked value that reaches an address
// computation (the address operand of a load or store) or a branch
// condition influences microarchitectural state — the cache, the
// predictor — before the ld.c that would repair a mis-speculation
// retires. Layer 2 asks "is every speculative value eventually
// checked?"; Layer 3 asks the stricter, security-flavoured question
// "can a speculative value steer memory traffic or control flow BEFORE
// its check?".
//
// The analysis extends Layer 2's per-register provider/validated/
// crossed lattice (reusing its transfer function and fixpoint
// machinery) with two facts:
//
//   - poisoned (may, OR-meet): the register holds a value data-derived
//     (through moves, ALU, comparisons, conversions — "laundered
//     through arithmetic") from a speculative value that was live past
//     a potentially-aliasing store with no check since. Poison survives
//     a later ld.c on the origin register: the derivation already
//     consumed the possibly-stale value.
//   - origin (per-register): the instruction index of the tainting
//     advanced load, carried along for the leak report.
//
// A register is "speculative-stale" at a point when Layer 2's
// provider ∧ crossed ∧ ¬validated holds: its value came from an
// ALAT-allocating load, some store (or call) has crossed since, and no
// check has confirmed it. Values consumed before any crossing store
// are architecturally committed (the advanced load executed at the
// first occurrence's original position), so they neither leak nor
// poison — this keeps the analysis clean on every bundled workload
// under every speculation mode, where post-store consumptions of the
// web register all go through the ld.c first. Legitimate compiler
// output CAN still leak: fuzzing surfaces programs where PRE moves
// both a load and arithmetic derived from it above a may-aliasing
// store and branches on the derived value before the check — a true
// positive, and exactly the code shape the hardening pass
// (internal/harden) exists to close. So Layer 3 is an opt-in security
// analysis, not part of the soundness gate: the compile pipeline
// enforces it only on hardened builds, where a residual leak is a
// compile error.
//
// A leak is reported when a sink — the address operand of any
// load-class instruction, the address operand of a store, or the
// condition register of a conditional branch — reads a register that
// is speculative-stale or poisoned.
//
// OpFence is the mitigation boundary (the hardening pass inserts it):
// a fence drains the pipeline, so by the time anything after it
// issues, the speculation window has closed. The transfer function
// models this as a commit: every provider register becomes validated
// and all poison clears. An ld.c clears the taint of its own register
// only.
//
// Unlike Layer 2's use-crosses-store rule, no web-has-check filter is
// applied: a check that exists but sits BELOW the sink is precisely
// the bug (a reordered or retargeted check), and restricting the rule
// to sinks — rather than every read — is what keeps it free of the
// false positives that forced the filter on Layer 2.

// Leak is one speculative-leak finding: a sink instruction reachable
// by a speculatively-loaded, never-validated value.
type Leak struct {
	// Fn is the containing function.
	Fn string
	// Load is the instruction index of the tainting advanced load.
	Load int
	// Sink is the instruction index of the leaking sink.
	Sink int
	// Reg is the register the sink reads the tainted value from.
	Reg int
	// Kind is "address" (load/store address operand) or "branch"
	// (conditional-branch condition).
	Kind string
	// PathLen is the layout distance |Sink-Load| in instructions, a
	// proxy for the length of the unchecked path.
	PathLen int
	// Direct reports that the sink reads the provider register itself
	// (hoistable: a duplicate check can validate it in place) rather
	// than a value laundered through arithmetic.
	Direct bool
}

func (l Leak) String() string {
	return fmt.Sprintf("%s: %s sink @%d reads r%d tainted by advanced load @%d (path %d)",
		l.Fn, l.Kind, l.Sink, l.Reg, l.Load, l.PathLen)
}

// taintState is Layer 3's dataflow fact: the Layer 2 base lattice plus
// may-poison and taint origins.
type taintState struct {
	base   *regState
	poison []bool
	origin []int32 // tainting advanced-load index, -1 when untainted
}

func newTaintState(n int) *taintState {
	t := &taintState{
		base:   newRegState(n),
		poison: make([]bool, n),
		origin: make([]int32, n),
	}
	for i := range t.origin {
		t.origin[i] = -1
	}
	return t
}

func (s *taintState) clone() *taintState {
	t := &taintState{
		base:   s.base.clone(),
		poison: make([]bool, len(s.poison)),
		origin: make([]int32, len(s.origin)),
	}
	copy(t.poison, s.poison)
	copy(t.origin, s.origin)
	return t
}

// meet joins o into s: base meets per Layer 2 (provider/validated AND,
// crossed OR), poison ORs (a leak on some path is a leak), origins take
// the smallest known index (deterministic under any join order).
func (s *taintState) meet(o *taintState) bool {
	changed := s.base.meet(o.base)
	for i := range s.poison {
		if !s.poison[i] && o.poison[i] {
			s.poison[i] = true
			changed = true
		}
		if o.origin[i] >= 0 && (s.origin[i] < 0 || o.origin[i] < s.origin[i]) {
			s.origin[i] = o.origin[i]
			changed = true
		}
	}
	return changed
}

// specStale reports whether register r holds a speculative value no
// check has confirmed since it crossed a store: Layer 2's
// provider ∧ crossed ∧ ¬validated.
func (s *taintState) specStale(r int) bool {
	return s.base.provider[r] && s.base.crossed[r] && !s.base.validated[r]
}

// tainted reports whether a sink reading r leaks.
func (s *taintState) tainted(r int) bool {
	return s.specStale(r) || s.poison[r]
}

// propagatesTaint reports whether in computes its destination from its
// register sources (moves, ALU, comparisons, conversions): the ops a
// tainted value launders through. Loads are excluded — their result
// comes from memory (the tainted ADDRESS is the sink, the loaded value
// is fresh) — as are lea/movi/alloc/arg/call, whose results carry no
// register-derived data.
func propagatesTaint(op machine.Opcode) bool {
	switch op {
	case machine.OpMov,
		machine.OpAdd, machine.OpSub, machine.OpMul, machine.OpDiv, machine.OpMod,
		machine.OpAnd, machine.OpOr, machine.OpXor, machine.OpShl, machine.OpShr,
		machine.OpNeg, machine.OpNot,
		machine.OpFAdd, machine.OpFSub, machine.OpFMul, machine.OpFDiv, machine.OpFNeg,
		machine.OpCmpEQ, machine.OpCmpNE, machine.OpCmpLT, machine.OpCmpLE,
		machine.OpCmpGT, machine.OpCmpGE,
		machine.OpFCmpEQ, machine.OpFCmpNE, machine.OpFCmpLT, machine.OpFCmpLE,
		machine.OpFCmpGT, machine.OpFCmpGE,
		machine.OpI2F, machine.OpF2I:
		return true
	}
	return false
}

// taintTransfer applies instruction i (at index idx) to the state in
// place: taint generation/propagation against the pre-state, then the
// Layer 2 base transfer, then the def's poison/origin update.
func taintTransfer(s *taintState, in machine.Instr, idx int) {
	// evaluate sources against the PRE-state: does the def inherit taint?
	derived := false
	var derivedFrom int32 = -1
	if propagatesTaint(in.Op) {
		for _, r := range instrReads(in) {
			if r < 0 || r >= len(s.poison) {
				continue
			}
			if s.tainted(r) {
				derived = true
				if o := s.origin[r]; o >= 0 && (derivedFrom < 0 || o < derivedFrom) {
					derivedFrom = o
				}
			}
		}
	}

	transfer(s.base, in)

	switch {
	case in.Op == machine.OpFence:
		// the barrier closes the speculation window: everything in
		// flight commits before anything after the fence issues
		for r := range s.base.provider {
			if s.base.provider[r] {
				s.base.validated[r] = true
			}
			s.poison[r] = false
		}
	case isAdvanced(in.Op):
		s.poison[in.Rd] = false
		s.origin[in.Rd] = int32(idx)
	case isCheck(in.Op):
		// the check commits its own register; laundered copies made from
		// the unchecked value stay poisoned
		s.poison[in.Rd] = false
		s.origin[in.Rd] = -1
	default:
		if d := instrDef(in); d >= 0 {
			s.poison[d] = derived
			if derived {
				s.origin[d] = derivedFrom
			} else {
				s.origin[d] = -1
			}
		}
	}
}

// sinkReads returns the (register, kind) sink operands of in: address
// operands of loads and stores, and conditional-branch conditions.
func sinkReads(in machine.Instr) (reg int, kind string, ok bool) {
	switch in.Op {
	case machine.OpLd, machine.OpLdF, machine.OpLdA, machine.OpLdFA,
		machine.OpLdC, machine.OpLdFC, machine.OpLdS, machine.OpLdFS,
		machine.OpLdSA, machine.OpLdFSA:
		return in.Rs, "address", true
	case machine.OpSt, machine.OpStF:
		return in.Rd, "address", true
	case machine.OpBeqz, machine.OpBnez:
		return in.Rs, "branch", true
	}
	return 0, "", false
}

// taintStates runs the Layer 3 fixpoint over fc and returns the
// per-instruction in-states (nil entries are unreachable).
func taintStates(fc *machine.FuncCode, nregs int) []*taintState {
	n := len(fc.Instrs)
	if n == 0 {
		return nil
	}
	succs := instrSuccs(fc)
	in := make([]*taintState, n)
	in[0] = newTaintState(nregs)
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[i].clone()
		taintTransfer(out, fc.Instrs[i], i)
		for _, s := range succs[i] {
			if s < 0 || s >= n {
				continue
			}
			if in[s] == nil {
				in[s] = out.clone()
				work = append(work, s)
			} else if in[s].meet(out) {
				work = append(work, s)
			}
		}
	}
	return in
}

// findFuncLeaks reports fc's speculative leaks in instruction order.
func findFuncLeaks(fc *machine.FuncCode) []Leak {
	if len(fc.Instrs) == 0 {
		return nil
	}
	nregs := funcNumRegs(fc)
	in := taintStates(fc, nregs)
	var leaks []Leak
	for i, instr := range fc.Instrs {
		st := in[i]
		if st == nil {
			continue // unreachable
		}
		r, kind, ok := sinkReads(instr)
		if !ok || r < 0 || r >= nregs || !st.tainted(r) {
			continue
		}
		load := int(st.origin[r])
		dist := i - load
		if dist < 0 {
			dist = -dist
		}
		leaks = append(leaks, Leak{
			Fn: fc.Name, Load: load, Sink: i, Reg: r, Kind: kind,
			PathLen: dist, Direct: st.specStale(r),
		})
	}
	return leaks
}

// FindLeaks runs the Layer 3 taint analysis over every function of the
// generated program and returns all speculative leaks, ordered by
// function name then sink index. It is pure analysis: the program is
// not modified.
func FindLeaks(code *machine.Program) []Leak {
	var leaks []Leak
	names := make([]string, 0, len(code.Funcs))
	for name := range code.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		leaks = append(leaks, findFuncLeaks(code.Funcs[name])...)
	}
	return leaks
}

// CheckLeaks wraps FindLeaks as specheck Violations (rule
// "speculative-leak"), for the VerifyPasses pipeline hook.
func CheckLeaks(code *machine.Program, pass string) []Violation {
	leaks := FindLeaks(code)
	if len(leaks) == 0 {
		return nil
	}
	vs := make([]Violation, 0, len(leaks))
	for _, l := range leaks {
		fc := code.Funcs[l.Fn]
		vs = append(vs, Violation{
			Pass: pass, Func: l.Fn, Block: -1, Instr: l.Sink,
			Rule: "speculative-leak",
			Msg: fmt.Sprintf("[%s] %s sink reads r%d: speculative value from advanced load @%d [%s] with no check before the sink (path %d)",
				fc.Instrs[l.Sink], l.Kind, l.Reg, l.Load, fc.Instrs[l.Load], l.PathLen),
		})
	}
	return vs
}

// ProviderAt reports, per instruction index, whether reg holds a
// provider value (an ALAT-allocating load's result, possibly since
// checked) at entry to that instruction, per Layer 2's flow states.
// provider is AND-met, so true means EVERY path to that point carries
// the web — the hardening pass uses this to hoist a duplicate check
// across loop back-edges. Unreachable instructions report false.
func ProviderAt(fc *machine.FuncCode, reg int) []bool {
	n := len(fc.Instrs)
	prov := make([]bool, n)
	if n == 0 {
		return prov
	}
	nregs := funcNumRegs(fc)
	if reg < 0 || reg >= nregs {
		return prov
	}
	in := flowStates(fc, nregs)
	for i, st := range in {
		if st != nil && st.provider[reg] {
			prov[i] = true
		}
	}
	return prov
}

// UncheckedSpecSites returns the indices of fc's check loads whose
// in-state is speculative-stale on the checked register — the points
// where the value is provider ∧ crossed ∧ ¬validated the instant
// before its ld.c retires. A consumer reordered above such a check (or
// the check's deletion) produces a leak; the mutation harness and the
// experiment's leak seeding enumerate sites from this.
func UncheckedSpecSites(fc *machine.FuncCode) []int {
	if len(fc.Instrs) == 0 {
		return nil
	}
	nregs := funcNumRegs(fc)
	in := flowStates(fc, nregs)
	var sites []int
	for i, instr := range fc.Instrs {
		if !isCheck(instr.Op) || in[i] == nil {
			continue
		}
		st := in[i]
		r := instr.Rd
		if r >= 0 && r < nregs && st.provider[r] && st.crossed[r] && !st.validated[r] {
			sites = append(sites, i)
		}
	}
	return sites
}
