package profile

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestLocStringForms(t *testing.T) {
	prog := ir.NewProgram()
	g := prog.NewGlobal("glob", ir.IntType)
	f := prog.NewFunc("fn", ir.VoidType)
	l := f.NewSym("loc", ir.IntType, ir.SymLocal)

	cases := []struct {
		loc  Loc
		want string
	}{
		{Loc{Kind: LocGlobal, Sym: g}, "glob"},
		{Loc{Kind: LocLocal, Sym: l, Fn: f}, "fn:loc"},
		{Loc{Kind: LocHeap, Site: 7}, "heap@7"},
		{Loc{Kind: LocHeap, Site: 7, Ctx: 3}, "heap@7/3"},
	}
	for _, c := range cases {
		if got := c.loc.String(); got != c.want {
			t.Errorf("Loc.String() = %q, want %q", got, c.want)
		}
	}
}

func TestLocSetOperations(t *testing.T) {
	prog := ir.NewProgram()
	a := prog.NewGlobal("a", ir.IntType)
	b := prog.NewGlobal("b", ir.IntType)
	s := LocSet{}
	la := Loc{Kind: LocGlobal, Sym: a}
	lb := Loc{Kind: LocGlobal, Sym: b}
	s.Add(la)
	if !s.Has(la) || s.Has(lb) {
		t.Error("Add/Has broken")
	}
	s2 := LocSet{}
	s2.Add(lb)
	s.AddAll(s2)
	if !s.Has(lb) {
		t.Error("AddAll broken")
	}
	// deterministic, sorted rendering
	if got := s.String(); got != "{a, b}" {
		t.Errorf("String() = %q", got)
	}
}

func TestProfileSetAccessorsCreateOnDemand(t *testing.T) {
	p := New()
	p.LoadSet(1).Add(Loc{Kind: LocHeap, Site: 9})
	p.StoreSet(2).Add(Loc{Kind: LocHeap, Site: 9})
	p.ModSet(3).Add(Loc{Kind: LocHeap, Site: 9})
	p.RefSet(4).Add(Loc{Kind: LocHeap, Site: 9})
	if len(p.LoadLocs) != 1 || len(p.StoreLocs) != 1 || len(p.CallMod) != 1 || len(p.CallRef) != 1 {
		t.Error("set accessors did not register their maps")
	}
	// repeated access returns the same set
	if len(p.LoadSet(1)) != 1 {
		t.Error("LoadSet not memoized")
	}
}

// buildDiamond constructs entry → (left|right) → join → exit.
func buildDiamond() (*ir.Program, *ir.Func, []*ir.Block) {
	prog := ir.NewProgram()
	f := prog.NewFunc("main", ir.IntType)
	entry, left, right, join := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = entry
	ir.Connect(entry, left)
	ir.Connect(entry, right)
	ir.Connect(left, join)
	ir.Connect(right, join)
	entry.Term = ir.Term{Kind: ir.TermCond, Cond: &ir.ConstInt{Val: 1}}
	left.Term = ir.Term{Kind: ir.TermJump}
	right.Term = ir.Term{Kind: ir.TermJump}
	join.Term = ir.Term{Kind: ir.TermRet}
	return prog, f, []*ir.Block{entry, left, right, join}
}

func TestApplyEdges(t *testing.T) {
	prog, _, blocks := buildDiamond()
	p := New()
	p.BlockCount[blocks[0]] = 100
	p.BlockCount[blocks[1]] = 70
	p.BlockCount[blocks[2]] = 30
	p.BlockCount[blocks[3]] = 100
	p.EdgeCount[blocks[0]] = []uint64{70, 30}
	p.ApplyEdges(prog)
	if blocks[0].Freq != 100 {
		t.Errorf("entry freq = %v", blocks[0].Freq)
	}
	if blocks[0].EdgeFreq[0] != 70 || blocks[0].EdgeFreq[1] != 30 {
		t.Errorf("edge freqs = %v", blocks[0].EdgeFreq)
	}
	// unexecuted functions keep zero frequencies without panicking
	if blocks[1].EdgeFreq == nil {
		t.Error("EdgeFreq slices must always be allocated")
	}
}

func TestStaticEstimateLoopsAreHot(t *testing.T) {
	prog := ir.NewProgram()
	f := prog.NewFunc("main", ir.IntType)
	entry, header, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = entry
	ir.Connect(entry, header)
	ir.Connect(header, body)
	ir.Connect(header, exit)
	ir.Connect(body, header)
	entry.Term = ir.Term{Kind: ir.TermJump}
	header.Term = ir.Term{Kind: ir.TermCond, Cond: &ir.ConstInt{Val: 1}}
	body.Term = ir.Term{Kind: ir.TermJump}
	exit.Term = ir.Term{Kind: ir.TermRet}

	StaticEstimate(prog)
	if header.Freq <= entry.Freq {
		t.Errorf("loop header (%v) should be hotter than entry (%v)", header.Freq, entry.Freq)
	}
	if body.Freq <= exit.Freq {
		t.Errorf("loop body (%v) should be hotter than exit (%v)", body.Freq, exit.Freq)
	}
}

func TestLocSetStringStable(t *testing.T) {
	prog := ir.NewProgram()
	syms := []*ir.Sym{
		prog.NewGlobal("zz", ir.IntType),
		prog.NewGlobal("aa", ir.IntType),
		prog.NewGlobal("mm", ir.IntType),
	}
	s := LocSet{}
	for _, sym := range syms {
		s.Add(Loc{Kind: LocGlobal, Sym: sym})
	}
	first := s.String()
	for i := 0; i < 20; i++ {
		if s.String() != first {
			t.Fatal("LocSet.String() not deterministic")
		}
	}
	if !strings.HasPrefix(first, "{aa") {
		t.Errorf("not sorted: %q", first)
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	prog, fn, blocks := func() (*ir.Program, *ir.Func, []*ir.Block) {
		return buildDiamondNamed()
	}()
	_ = fn
	p := New()
	p.BlockCount[blocks[0]] = 42
	p.EdgeCount[blocks[0]] = []uint64{30, 12}
	g := prog.Globals[0]
	p.LoadSet(5).Add(Loc{Kind: LocGlobal, Sym: g})
	p.LoadSet(5).Add(Loc{Kind: LocHeap, Site: 9, Ctx: 2})
	p.StoreSet(6).Add(Loc{Kind: LocLocal, Sym: fnLocal(prog), Fn: prog.Funcs[0]})
	p.ModSet(7).Add(Loc{Kind: LocGlobal, Sym: g})
	p.RefSet(8).Add(Loc{Kind: LocHeap, Site: 3, Ctx: 0})

	data, err := Marshal(prog, p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Unmarshal(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if p2.BlockCount[blocks[0]] != 42 {
		t.Errorf("block count lost: %v", p2.BlockCount)
	}
	if len(p2.EdgeCount[blocks[0]]) != 2 || p2.EdgeCount[blocks[0]][0] != 30 {
		t.Errorf("edge counts lost: %v", p2.EdgeCount)
	}
	if p.LoadLocs[5].String() != p2.LoadLocs[5].String() {
		t.Errorf("load locs: %s != %s", p2.LoadLocs[5], p.LoadLocs[5])
	}
	if p.StoreLocs[6].String() != p2.StoreLocs[6].String() {
		t.Errorf("store locs: %s != %s", p2.StoreLocs[6], p.StoreLocs[6])
	}
	if p.CallMod[7].String() != p2.CallMod[7].String() {
		t.Errorf("mod locs mismatch")
	}
	if p.CallRef[8].String() != p2.CallRef[8].String() {
		t.Errorf("ref locs mismatch")
	}
}

func TestUnmarshalToleratesStaleLocs(t *testing.T) {
	prog, _, _ := buildDiamondNamed()
	data := []byte(`{"version":1,"loads":{"5":["g:nosuchglobal","h:1/0"]}}`)
	p, err := Unmarshal(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if !p.LoadLocs[5].Has(Loc{Kind: LocHeap, Site: 1}) {
		t.Error("valid loc dropped alongside the stale one")
	}
	if len(p.LoadLocs[5]) != 1 {
		t.Errorf("stale loc kept: %s", p.LoadLocs[5])
	}
}

func TestUnmarshalRejectsBadVersionAndJSON(t *testing.T) {
	prog, _, _ := buildDiamondNamed()
	if _, err := Unmarshal(prog, []byte(`{"version":2}`)); err == nil {
		t.Error("version 2 accepted")
	}
	if _, err := Unmarshal(prog, []byte(`{nonsense`)); err == nil {
		t.Error("bad JSON accepted")
	}
}

// buildDiamondNamed is buildDiamond plus a global and a local symbol.
func buildDiamondNamed() (*ir.Program, *ir.Func, []*ir.Block) {
	prog, f, blocks := buildDiamond()
	prog.NewGlobal("gv", ir.IntType)
	f.NewSym("lv", ir.IntType, ir.SymLocal)
	return prog, f, blocks
}

func fnLocal(prog *ir.Program) *ir.Sym {
	for _, s := range prog.Funcs[0].Syms {
		if s.Name == "lv" {
			return s
		}
	}
	return nil
}
