package profile

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestLocStringForms(t *testing.T) {
	prog := ir.NewProgram()
	g := prog.NewGlobal("glob", ir.IntType)
	f := prog.NewFunc("fn", ir.VoidType)
	l := f.NewSym("loc", ir.IntType, ir.SymLocal)

	cases := []struct {
		loc  Loc
		want string
	}{
		{Loc{Kind: LocGlobal, Sym: g}, "glob"},
		{Loc{Kind: LocLocal, Sym: l, Fn: f}, "fn:loc"},
		{Loc{Kind: LocHeap, Site: 7}, "heap@7"},
		{Loc{Kind: LocHeap, Site: 7, Ctx: 3}, "heap@7/3"},
	}
	for _, c := range cases {
		if got := c.loc.String(); got != c.want {
			t.Errorf("Loc.String() = %q, want %q", got, c.want)
		}
	}
}

func TestLocSetOperations(t *testing.T) {
	prog := ir.NewProgram()
	a := prog.NewGlobal("a", ir.IntType)
	b := prog.NewGlobal("b", ir.IntType)
	s := LocSet{}
	la := Loc{Kind: LocGlobal, Sym: a}
	lb := Loc{Kind: LocGlobal, Sym: b}
	s.Add(la)
	if !s.Has(la) || s.Has(lb) {
		t.Error("Add/Has broken")
	}
	s2 := LocSet{}
	s2.Add(lb)
	s.AddAll(s2)
	if !s.Has(lb) {
		t.Error("AddAll broken")
	}
	// deterministic, sorted rendering
	if got := s.String(); got != "{a, b}" {
		t.Errorf("String() = %q", got)
	}
}

func TestProfileSetAccessorsCreateOnDemand(t *testing.T) {
	p := New()
	p.LoadSet(1).Add(Loc{Kind: LocHeap, Site: 9})
	p.StoreSet(2).Add(Loc{Kind: LocHeap, Site: 9})
	p.ModSet(3).Add(Loc{Kind: LocHeap, Site: 9})
	p.RefSet(4).Add(Loc{Kind: LocHeap, Site: 9})
	if len(p.LoadLocs) != 1 || len(p.StoreLocs) != 1 || len(p.CallMod) != 1 || len(p.CallRef) != 1 {
		t.Error("set accessors did not register their maps")
	}
	// repeated access returns the same set
	if len(p.LoadSet(1)) != 1 {
		t.Error("LoadSet not memoized")
	}
}

// buildDiamond constructs entry → (left|right) → join → exit.
func buildDiamond() (*ir.Program, *ir.Func, []*ir.Block) {
	prog := ir.NewProgram()
	f := prog.NewFunc("main", ir.IntType)
	entry, left, right, join := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = entry
	ir.Connect(entry, left)
	ir.Connect(entry, right)
	ir.Connect(left, join)
	ir.Connect(right, join)
	entry.Term = ir.Term{Kind: ir.TermCond, Cond: &ir.ConstInt{Val: 1}}
	left.Term = ir.Term{Kind: ir.TermJump}
	right.Term = ir.Term{Kind: ir.TermJump}
	join.Term = ir.Term{Kind: ir.TermRet}
	return prog, f, []*ir.Block{entry, left, right, join}
}

func TestApplyEdges(t *testing.T) {
	prog, _, blocks := buildDiamond()
	p := New()
	p.BlockCount[blocks[0]] = 100
	p.BlockCount[blocks[1]] = 70
	p.BlockCount[blocks[2]] = 30
	p.BlockCount[blocks[3]] = 100
	p.EdgeCount[blocks[0]] = []uint64{70, 30}
	p.ApplyEdges(prog)
	// frequencies are per-entry: entry is 1 no matter how many times the
	// training input called the function
	if blocks[0].Freq != 1 {
		t.Errorf("entry freq = %v, want 1", blocks[0].Freq)
	}
	if blocks[0].EdgeFreq[0] != 0.7 || blocks[0].EdgeFreq[1] != 0.3 {
		t.Errorf("edge freqs = %v, want [0.7 0.3]", blocks[0].EdgeFreq)
	}
	if blocks[1].Freq != 0.7 || blocks[2].Freq != 0.3 {
		t.Errorf("branch freqs = %v, %v, want 0.7, 0.3", blocks[1].Freq, blocks[2].Freq)
	}
	// unexecuted functions keep zero frequencies without panicking
	if blocks[1].EdgeFreq == nil {
		t.Error("EdgeFreq slices must always be allocated")
	}
}

// TestApplyEdgesNormalizesPerFunction is the regression test for the
// frequency-accounting bug: raw counts made a helper called 1000× look
// three orders of magnitude hotter than main even when, per invocation,
// both have identical shape. Each function must be scaled by its own
// entry count so frequencies are comparable across functions.
func TestApplyEdgesNormalizesPerFunction(t *testing.T) {
	prog := ir.NewProgram()
	mkDiamond := func(name string) (*ir.Func, []*ir.Block) {
		f := prog.NewFunc(name, ir.IntType)
		entry, left, right, join := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
		f.Entry = entry
		ir.Connect(entry, left)
		ir.Connect(entry, right)
		ir.Connect(left, join)
		ir.Connect(right, join)
		entry.Term = ir.Term{Kind: ir.TermCond, Cond: &ir.ConstInt{Val: 1}}
		left.Term = ir.Term{Kind: ir.TermJump}
		right.Term = ir.Term{Kind: ir.TermJump}
		join.Term = ir.Term{Kind: ir.TermRet}
		return f, []*ir.Block{entry, left, right, join}
	}
	_, mb := mkDiamond("main")
	_, hb := mkDiamond("helper")

	p := New()
	// main runs once, helper 1000 times; both split 70/30 per entry
	p.BlockCount[mb[0]], p.BlockCount[mb[1]], p.BlockCount[mb[2]], p.BlockCount[mb[3]] = 1, 1, 0, 1
	p.EdgeCount[mb[0]] = []uint64{1, 0}
	p.BlockCount[hb[0]], p.BlockCount[hb[1]], p.BlockCount[hb[2]], p.BlockCount[hb[3]] = 1000, 700, 300, 1000
	p.EdgeCount[hb[0]] = []uint64{700, 300}
	p.ApplyEdges(prog)

	if mb[0].Freq != 1 || hb[0].Freq != 1 {
		t.Errorf("entry freqs = %v, %v, want 1, 1", mb[0].Freq, hb[0].Freq)
	}
	if hb[1].Freq != 0.7 || hb[2].Freq != 0.3 {
		t.Errorf("helper branch freqs = %v, %v, want 0.7, 0.3", hb[1].Freq, hb[2].Freq)
	}
	// the bug: helper's blocks dwarfed main's by the call-count ratio
	if hb[3].Freq != mb[3].Freq {
		t.Errorf("join freqs differ across functions: helper %v vs main %v",
			hb[3].Freq, mb[3].Freq)
	}
}

func TestStaticEstimateLoopsAreHot(t *testing.T) {
	prog := ir.NewProgram()
	f := prog.NewFunc("main", ir.IntType)
	entry, header, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = entry
	ir.Connect(entry, header)
	ir.Connect(header, body)
	ir.Connect(header, exit)
	ir.Connect(body, header)
	entry.Term = ir.Term{Kind: ir.TermJump}
	header.Term = ir.Term{Kind: ir.TermCond, Cond: &ir.ConstInt{Val: 1}}
	body.Term = ir.Term{Kind: ir.TermJump}
	exit.Term = ir.Term{Kind: ir.TermRet}

	StaticEstimate(prog)
	if header.Freq <= entry.Freq {
		t.Errorf("loop header (%v) should be hotter than entry (%v)", header.Freq, entry.Freq)
	}
	if body.Freq <= exit.Freq {
		t.Errorf("loop body (%v) should be hotter than exit (%v)", body.Freq, exit.Freq)
	}
	// a 9/10-stay latch converges near 10 iterations per entry
	if header.Freq < 5 || header.Freq > 15 {
		t.Errorf("loop header freq = %v, want ~10", header.Freq)
	}
}

// TestStaticEstimateFlowConservation checks the Kirchhoff property the
// old estimate violated: for every non-entry block, incoming edge
// frequency mass equals the block's own frequency, and a block's
// outgoing edge frequencies sum back to its frequency.
func TestStaticEstimateFlowConservation(t *testing.T) {
	prog := ir.NewProgram()
	f := prog.NewFunc("main", ir.IntType)
	entry, header, body, exit := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	f.Entry = entry
	ir.Connect(entry, header)
	ir.Connect(header, body)
	ir.Connect(header, exit)
	ir.Connect(body, header)
	entry.Term = ir.Term{Kind: ir.TermJump}
	header.Term = ir.Term{Kind: ir.TermCond, Cond: &ir.ConstInt{Val: 1}}
	body.Term = ir.Term{Kind: ir.TermJump}
	exit.Term = ir.Term{Kind: ir.TermRet}

	StaticEstimate(prog)
	const eps = 1e-6
	for _, b := range f.Blocks {
		var out float64
		for _, ef := range b.EdgeFreq {
			out += ef
		}
		if len(b.Succs) > 0 && abs(out-b.Freq) > eps {
			t.Errorf("B%d: outgoing edges sum to %v, block freq %v", b.ID, out, b.Freq)
		}
		if b == f.Entry {
			continue
		}
		var in float64
		for _, p := range b.Preds {
			for i, s := range p.Succs {
				if s == b {
					in += p.EdgeFreq[i]
				}
			}
		}
		if abs(in-b.Freq) > eps {
			t.Errorf("B%d: incoming edges sum to %v, block freq %v", b.ID, in, b.Freq)
		}
	}
	// the latch split itself: 9/10 stays, 1/10 exits
	ratio := header.EdgeFreq[0] / header.EdgeFreq[1]
	if abs(ratio-9) > eps {
		t.Errorf("latch stay/exit ratio = %v, want 9", ratio)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestLocSetStringStable(t *testing.T) {
	prog := ir.NewProgram()
	syms := []*ir.Sym{
		prog.NewGlobal("zz", ir.IntType),
		prog.NewGlobal("aa", ir.IntType),
		prog.NewGlobal("mm", ir.IntType),
	}
	s := LocSet{}
	for _, sym := range syms {
		s.Add(Loc{Kind: LocGlobal, Sym: sym})
	}
	first := s.String()
	for i := 0; i < 20; i++ {
		if s.String() != first {
			t.Fatal("LocSet.String() not deterministic")
		}
	}
	if !strings.HasPrefix(first, "{aa") {
		t.Errorf("not sorted: %q", first)
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	prog, fn, blocks := func() (*ir.Program, *ir.Func, []*ir.Block) {
		return buildDiamondNamed()
	}()
	_ = fn
	p := New()
	p.BlockCount[blocks[0]] = 42
	p.EdgeCount[blocks[0]] = []uint64{30, 12}
	g := prog.Globals[0]
	p.LoadSet(5).Add(Loc{Kind: LocGlobal, Sym: g})
	p.LoadSet(5).Add(Loc{Kind: LocHeap, Site: 9, Ctx: 2})
	p.StoreSet(6).Add(Loc{Kind: LocLocal, Sym: fnLocal(prog), Fn: prog.Funcs[0]})
	p.ModSet(7).Add(Loc{Kind: LocGlobal, Sym: g})
	p.RefSet(8).Add(Loc{Kind: LocHeap, Site: 3, Ctx: 0})

	data, err := Marshal(prog, p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Unmarshal(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if p2.BlockCount[blocks[0]] != 42 {
		t.Errorf("block count lost: %v", p2.BlockCount)
	}
	if len(p2.EdgeCount[blocks[0]]) != 2 || p2.EdgeCount[blocks[0]][0] != 30 {
		t.Errorf("edge counts lost: %v", p2.EdgeCount)
	}
	if p.LoadLocs[5].String() != p2.LoadLocs[5].String() {
		t.Errorf("load locs: %s != %s", p2.LoadLocs[5], p.LoadLocs[5])
	}
	if p.StoreLocs[6].String() != p2.StoreLocs[6].String() {
		t.Errorf("store locs: %s != %s", p2.StoreLocs[6], p.StoreLocs[6])
	}
	if p.CallMod[7].String() != p2.CallMod[7].String() {
		t.Errorf("mod locs mismatch")
	}
	if p.CallRef[8].String() != p2.CallRef[8].String() {
		t.Errorf("ref locs mismatch")
	}
}

func TestUnmarshalToleratesStaleLocs(t *testing.T) {
	prog, _, _ := buildDiamondNamed()
	data := []byte(`{"version":1,"loads":{"5":["g:nosuchglobal","h:1/0"]}}`)
	p, err := Unmarshal(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if !p.LoadLocs[5].Has(Loc{Kind: LocHeap, Site: 1}) {
		t.Error("valid loc dropped alongside the stale one")
	}
	if len(p.LoadLocs[5]) != 1 {
		t.Errorf("stale loc kept: %s", p.LoadLocs[5])
	}
}

func TestUnmarshalRejectsBadVersionAndJSON(t *testing.T) {
	prog, _, _ := buildDiamondNamed()
	if _, err := Unmarshal(prog, []byte(`{"version":3}`)); err == nil {
		t.Error("version 3 accepted")
	}
	if _, err := Unmarshal(prog, []byte(`{nonsense`)); err == nil {
		t.Error("bad JSON accepted")
	}
}

// TestSerializationKeepsCountsAndTotals is the version-2 round trip: the
// multiset occurrence counts and per-site execution totals that the
// cost-model policy computes alias probabilities from must survive
// Marshal/Unmarshal exactly.
func TestSerializationKeepsCountsAndTotals(t *testing.T) {
	prog, _, _ := buildDiamondNamed()
	g := prog.Globals[0]
	p := New()
	p.LoadSet(5).AddN(Loc{Kind: LocGlobal, Sym: g}, 7)
	p.LoadSet(5).Add(Loc{Kind: LocHeap, Site: 9, Ctx: 2})
	p.SiteTotal[5] = 100
	p.StoreSet(6).AddN(Loc{Kind: LocLocal, Sym: fnLocal(prog), Fn: prog.Funcs[0]}, 3)
	p.SiteTotal[6] = 40

	data, err := Marshal(prog, p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Unmarshal(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.LoadLocs[5].Count(Loc{Kind: LocGlobal, Sym: g}); got != 7 {
		t.Errorf("load count = %d, want 7", got)
	}
	if got := p2.LoadLocs[5].Count(Loc{Kind: LocHeap, Site: 9, Ctx: 2}); got != 1 {
		t.Errorf("heap load count = %d, want 1", got)
	}
	if p2.Total(5) != 100 || p2.Total(6) != 40 {
		t.Errorf("totals = %d, %d, want 100, 40", p2.Total(5), p2.Total(6))
	}
	if got := p2.StoreLocs[6].Count(Loc{Kind: LocLocal, Sym: fnLocal(prog), Fn: prog.Funcs[0]}); got != 3 {
		t.Errorf("store count = %d, want 3", got)
	}
}

// TestUnmarshalVersion1Compat reads the pre-multiset format: plain loc
// lists, no counts, no totals. Membership must be preserved (count 1
// each) and totals stay zero, which degrades the cost policy to the old
// observed/not-observed semantics.
func TestUnmarshalVersion1Compat(t *testing.T) {
	prog, _, _ := buildDiamondNamed()
	data := []byte(`{"version":1,"loads":{"5":["g:gv","h:9/2"]},"stores":{"6":["l:main:lv"]}}`)
	p, err := Unmarshal(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Globals[0]
	if !p.LoadLocs[5].Has(Loc{Kind: LocGlobal, Sym: g}) {
		t.Error("v1 global load loc lost")
	}
	if got := p.LoadLocs[5].Count(Loc{Kind: LocGlobal, Sym: g}); got != 1 {
		t.Errorf("v1 load count = %d, want 1", got)
	}
	if !p.StoreLocs[6].Has(Loc{Kind: LocLocal, Sym: fnLocal(prog), Fn: prog.Funcs[0]}) {
		t.Error("v1 store loc lost")
	}
	if p.Total(5) != 0 || p.Total(6) != 0 {
		t.Errorf("v1 totals = %d, %d, want 0, 0", p.Total(5), p.Total(6))
	}
}

// buildDiamondNamed is buildDiamond plus a global and a local symbol.
func buildDiamondNamed() (*ir.Program, *ir.Func, []*ir.Block) {
	prog, f, blocks := buildDiamond()
	prog.NewGlobal("gv", ir.IntType)
	f.NewSym("lv", ir.IntType, ir.SymLocal)
	return prog, f, blocks
}

func fnLocal(prog *ir.Program) *ir.Sym {
	for _, s := range prog.Funcs[0].Syms {
		if s.Name == "lv" {
			return s
		}
	}
	return nil
}
