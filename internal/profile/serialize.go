package profile

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// serialized is the on-disk JSON form of a profile. Reference sites are
// keyed by their program-unique site ids and blocks by "func:Bn"; both are
// stable across compiles of identical source (lowering is deterministic).
type serialized struct {
	Version int                 `json:"version"`
	Blocks  map[string]uint64   `json:"blocks,omitempty"`
	Edges   map[string][]uint64 `json:"edges,omitempty"`
	Loads   map[string][]string `json:"loads,omitempty"`
	Stores  map[string][]string `json:"stores,omitempty"`
	CallMod map[string][]string `json:"callmod,omitempty"`
	CallRef map[string][]string `json:"callref,omitempty"`
}

// encodeLoc renders a Loc as a stable string.
func encodeLoc(l Loc) string {
	switch l.Kind {
	case LocGlobal:
		return "g:" + l.Sym.Name
	case LocLocal:
		return "l:" + l.Fn.Name + ":" + l.Sym.Name
	case LocHeap:
		return fmt.Sprintf("h:%d/%d", l.Site, l.Ctx)
	}
	return ""
}

// decodeLoc parses an encoded Loc against a program's symbols.
func decodeLoc(prog *ir.Program, s string) (Loc, error) {
	switch {
	case strings.HasPrefix(s, "g:"):
		name := s[2:]
		for _, g := range prog.Globals {
			if g.Name == name {
				return Loc{Kind: LocGlobal, Sym: g}, nil
			}
		}
		return Loc{}, fmt.Errorf("profile: unknown global %q", name)
	case strings.HasPrefix(s, "l:"):
		parts := strings.SplitN(s[2:], ":", 2)
		if len(parts) != 2 {
			return Loc{}, fmt.Errorf("profile: malformed local loc %q", s)
		}
		fn, ok := prog.FuncMap[parts[0]]
		if !ok {
			return Loc{}, fmt.Errorf("profile: unknown function %q", parts[0])
		}
		for _, sym := range fn.Syms {
			if sym.Name == parts[1] {
				return Loc{Kind: LocLocal, Sym: sym, Fn: fn}, nil
			}
		}
		return Loc{}, fmt.Errorf("profile: unknown local %q in %q", parts[1], parts[0])
	case strings.HasPrefix(s, "h:"):
		var site, ctx int
		if _, err := fmt.Sscanf(s[2:], "%d/%d", &site, &ctx); err != nil {
			return Loc{}, fmt.Errorf("profile: malformed heap loc %q", s)
		}
		return Loc{Kind: LocHeap, Site: site, Ctx: ctx}, nil
	}
	return Loc{}, fmt.Errorf("profile: malformed loc %q", s)
}

// blockKeys builds the stable name of every block.
func blockKeys(prog *ir.Program) map[*ir.Block]string {
	m := map[*ir.Block]string{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			m[b] = fmt.Sprintf("%s:B%d", f.Name, b.ID)
		}
	}
	return m
}

// Marshal serializes a profile collected on prog.
func Marshal(prog *ir.Program, p *Profile) ([]byte, error) {
	out := serialized{
		Version: 1,
		Blocks:  map[string]uint64{},
		Edges:   map[string][]uint64{},
		Loads:   map[string][]string{},
		Stores:  map[string][]string{},
		CallMod: map[string][]string{},
		CallRef: map[string][]string{},
	}
	keys := blockKeys(prog)
	for b, c := range p.BlockCount {
		if k, ok := keys[b]; ok {
			out.Blocks[k] = c
		}
	}
	for b, counts := range p.EdgeCount {
		if k, ok := keys[b]; ok {
			out.Edges[k] = counts
		}
	}
	encodeSets := func(dst map[string][]string, src map[int]LocSet) {
		for site, set := range src {
			var locs []string
			for l := range set {
				locs = append(locs, encodeLoc(l))
			}
			// stable output for diffing and golden tests
			sort.Strings(locs)
			dst[fmt.Sprint(site)] = locs
		}
	}
	encodeSets(out.Loads, p.LoadLocs)
	encodeSets(out.Stores, p.StoreLocs)
	encodeSets(out.CallMod, p.CallMod)
	encodeSets(out.CallRef, p.CallRef)
	return json.MarshalIndent(out, "", "  ")
}

// Unmarshal parses a serialized profile against prog. Locations that no
// longer resolve (the program changed since profiling) are dropped with an
// error only for structural corruption, matching profile-feedback
// tolerance in real compilers.
func Unmarshal(prog *ir.Program, data []byte) (*Profile, error) {
	var in serialized
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("profile: unsupported version %d", in.Version)
	}
	p := New()
	blocks := map[string]*ir.Block{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			blocks[fmt.Sprintf("%s:B%d", f.Name, b.ID)] = b
		}
	}
	for k, c := range in.Blocks {
		if b, ok := blocks[k]; ok {
			p.BlockCount[b] = c
		}
	}
	for k, counts := range in.Edges {
		if b, ok := blocks[k]; ok {
			p.EdgeCount[b] = counts
		}
	}
	decodeSets := func(src map[string][]string, get func(int) LocSet) error {
		for siteStr, locs := range src {
			var site int
			if _, err := fmt.Sscanf(siteStr, "%d", &site); err != nil {
				return fmt.Errorf("profile: bad site key %q", siteStr)
			}
			set := get(site)
			for _, ls := range locs {
				loc, err := decodeLoc(prog, ls)
				if err != nil {
					continue // stale entry: tolerate
				}
				set.Add(loc)
			}
		}
		return nil
	}
	if err := decodeSets(in.Loads, p.LoadSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.Stores, p.StoreSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.CallMod, p.ModSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.CallRef, p.RefSet); err != nil {
		return nil, err
	}
	return p, nil
}
