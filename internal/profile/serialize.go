package profile

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Version is the serialization format written by Marshal. Version 2
// carries counted LOC multisets plus per-site execution totals; version 1
// (read-compatible) carried plain LOC sets, which deserialize as count-1
// entries with no totals.
const Version = 2

// serialized is the on-disk JSON form of a version-2 profile. Reference
// sites are keyed by their program-unique site ids and blocks by
// "func:Bn"; both are stable across compiles of identical source
// (lowering is deterministic). Each site maps encoded LOCs to their
// observation counts, and Totals records the site's dynamic executions.
type serialized struct {
	Version int                          `json:"version"`
	Blocks  map[string]uint64            `json:"blocks,omitempty"`
	Edges   map[string][]uint64          `json:"edges,omitempty"`
	Loads   map[string]map[string]uint64 `json:"loads,omitempty"`
	Stores  map[string]map[string]uint64 `json:"stores,omitempty"`
	CallMod map[string]map[string]uint64 `json:"callmod,omitempty"`
	CallRef map[string]map[string]uint64 `json:"callref,omitempty"`
	Totals  map[string]uint64            `json:"totals,omitempty"`
}

// serializedV1 is the legacy (set-valued) form, still accepted on read.
type serializedV1 struct {
	Blocks  map[string]uint64   `json:"blocks,omitempty"`
	Edges   map[string][]uint64 `json:"edges,omitempty"`
	Loads   map[string][]string `json:"loads,omitempty"`
	Stores  map[string][]string `json:"stores,omitempty"`
	CallMod map[string][]string `json:"callmod,omitempty"`
	CallRef map[string][]string `json:"callref,omitempty"`
}

// encodeLoc renders a Loc as a stable string.
func encodeLoc(l Loc) string {
	switch l.Kind {
	case LocGlobal:
		return "g:" + l.Sym.Name
	case LocLocal:
		return "l:" + l.Fn.Name + ":" + l.Sym.Name
	case LocHeap:
		return fmt.Sprintf("h:%d/%d", l.Site, l.Ctx)
	}
	return ""
}

// decodeLoc parses an encoded Loc against a program's symbols.
func decodeLoc(prog *ir.Program, s string) (Loc, error) {
	switch {
	case strings.HasPrefix(s, "g:"):
		name := s[2:]
		for _, g := range prog.Globals {
			if g.Name == name {
				return Loc{Kind: LocGlobal, Sym: g}, nil
			}
		}
		return Loc{}, fmt.Errorf("profile: unknown global %q", name)
	case strings.HasPrefix(s, "l:"):
		parts := strings.SplitN(s[2:], ":", 2)
		if len(parts) != 2 {
			return Loc{}, fmt.Errorf("profile: malformed local loc %q", s)
		}
		fn, ok := prog.FuncMap[parts[0]]
		if !ok {
			return Loc{}, fmt.Errorf("profile: unknown function %q", parts[0])
		}
		for _, sym := range fn.Syms {
			if sym.Name == parts[1] {
				return Loc{Kind: LocLocal, Sym: sym, Fn: fn}, nil
			}
		}
		return Loc{}, fmt.Errorf("profile: unknown local %q in %q", parts[1], parts[0])
	case strings.HasPrefix(s, "h:"):
		var site, ctx int
		if _, err := fmt.Sscanf(s[2:], "%d/%d", &site, &ctx); err != nil {
			return Loc{}, fmt.Errorf("profile: malformed heap loc %q", s)
		}
		return Loc{Kind: LocHeap, Site: site, Ctx: ctx}, nil
	}
	return Loc{}, fmt.Errorf("profile: malformed loc %q", s)
}

// blockKeys builds the stable name of every block.
func blockKeys(prog *ir.Program) map[*ir.Block]string {
	m := map[*ir.Block]string{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			m[b] = fmt.Sprintf("%s:B%d", f.Name, b.ID)
		}
	}
	return m
}

// Marshal serializes a profile collected on prog (format Version).
func Marshal(prog *ir.Program, p *Profile) ([]byte, error) {
	out := serialized{
		Version: Version,
		Blocks:  map[string]uint64{},
		Edges:   map[string][]uint64{},
		Loads:   map[string]map[string]uint64{},
		Stores:  map[string]map[string]uint64{},
		CallMod: map[string]map[string]uint64{},
		CallRef: map[string]map[string]uint64{},
		Totals:  map[string]uint64{},
	}
	keys := blockKeys(prog)
	for b, c := range p.BlockCount {
		if k, ok := keys[b]; ok {
			out.Blocks[k] = c
		}
	}
	for b, counts := range p.EdgeCount {
		if k, ok := keys[b]; ok {
			out.Edges[k] = counts
		}
	}
	encodeSets := func(dst map[string]map[string]uint64, src map[int]LocSet) {
		for site, set := range src {
			locs := make(map[string]uint64, len(set))
			for l, n := range set {
				locs[encodeLoc(l)] = n
			}
			// map keys marshal sorted, so the output is stable for
			// diffing and golden tests
			dst[fmt.Sprint(site)] = locs
		}
	}
	encodeSets(out.Loads, p.LoadLocs)
	encodeSets(out.Stores, p.StoreLocs)
	encodeSets(out.CallMod, p.CallMod)
	encodeSets(out.CallRef, p.CallRef)
	for site, n := range p.SiteTotal {
		out.Totals[fmt.Sprint(site)] = n
	}
	return json.MarshalIndent(out, "", "  ")
}

// Unmarshal parses a serialized profile (version 2, or version 1 for
// backward compatibility) against prog. Locations that no longer resolve
// (the program changed since profiling) are dropped; an error is returned
// only for structural corruption or an unsupported version, matching
// profile-feedback tolerance in real compilers.
func Unmarshal(prog *ir.Program, data []byte) (*Profile, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	switch probe.Version {
	case 1:
		return unmarshalV1(prog, data)
	case 2:
		return unmarshalV2(prog, data)
	}
	return nil, fmt.Errorf("profile: unsupported version %d", probe.Version)
}

// decodeBlocks fills BlockCount/EdgeCount from the (version-independent)
// block and edge maps.
func decodeBlocks(prog *ir.Program, p *Profile, inBlocks map[string]uint64, inEdges map[string][]uint64) {
	blocks := map[string]*ir.Block{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			blocks[fmt.Sprintf("%s:B%d", f.Name, b.ID)] = b
		}
	}
	for k, c := range inBlocks {
		if b, ok := blocks[k]; ok {
			p.BlockCount[b] = c
		}
	}
	for k, counts := range inEdges {
		if b, ok := blocks[k]; ok {
			p.EdgeCount[b] = counts
		}
	}
}

func parseSite(s string) (int, error) {
	var site int
	if _, err := fmt.Sscanf(s, "%d", &site); err != nil {
		return 0, fmt.Errorf("profile: bad site key %q", s)
	}
	return site, nil
}

func unmarshalV2(prog *ir.Program, data []byte) (*Profile, error) {
	var in serialized
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	p := New()
	decodeBlocks(prog, p, in.Blocks, in.Edges)
	decodeSets := func(src map[string]map[string]uint64, get func(int) LocSet) error {
		for siteStr, locs := range src {
			site, err := parseSite(siteStr)
			if err != nil {
				return err
			}
			set := get(site)
			for ls, n := range locs {
				loc, err := decodeLoc(prog, ls)
				if err != nil {
					continue // stale entry: tolerate
				}
				set.AddN(loc, n)
			}
		}
		return nil
	}
	if err := decodeSets(in.Loads, p.LoadSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.Stores, p.StoreSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.CallMod, p.ModSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.CallRef, p.RefSet); err != nil {
		return nil, err
	}
	for siteStr, n := range in.Totals {
		site, err := parseSite(siteStr)
		if err != nil {
			return nil, err
		}
		p.SiteTotal[site] = n
	}
	return p, nil
}

// unmarshalV1 reads the legacy set-valued format: every listed LOC gets
// count 1 and no site totals are recorded, so probability-aware consumers
// degrade to the set semantics the format carried.
func unmarshalV1(prog *ir.Program, data []byte) (*Profile, error) {
	var in serializedV1
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	p := New()
	decodeBlocks(prog, p, in.Blocks, in.Edges)
	decodeSets := func(src map[string][]string, get func(int) LocSet) error {
		for siteStr, locs := range src {
			site, err := parseSite(siteStr)
			if err != nil {
				return err
			}
			set := get(site)
			for _, ls := range locs {
				loc, err := decodeLoc(prog, ls)
				if err != nil {
					continue // stale entry: tolerate
				}
				set.Add(loc)
			}
		}
		return nil
	}
	if err := decodeSets(in.Loads, p.LoadSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.Stores, p.StoreSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.CallMod, p.ModSet); err != nil {
		return nil, err
	}
	if err := decodeSets(in.CallRef, p.RefSet); err != nil {
		return nil, err
	}
	return p, nil
}
