// Package profile defines the profile data the speculative framework feeds
// back into the compiler: edge/block execution frequencies (for control
// speculation) and per-site abstract-memory-location (LOC) multisets from
// alias profiling (for data speculation), following §3.2.1 of Lin et al.
// (PLDI 2003). The multisets carry occurrence counts, so a policy can
// compute p(alias) = count(LOC)/executions(site) rather than only the
// binary observed/not-observed fact.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ir"
)

// LocKind classifies abstract memory locations.
type LocKind int

const (
	// LocGlobal is a file-scope variable.
	LocGlobal LocKind = iota
	// LocLocal is a function-scope variable (named per function; all
	// activations of a recursive function share one LOC, the usual
	// profiling granularity).
	LocLocal
	// LocHeap is a heap object named by its allocation site, the
	// granularity choice of Chen et al. (LCPC 2002), the paper's [4].
	LocHeap
)

// Loc is an abstract memory location (storage name). Comparable; used as a
// map key in LOC sets.
type Loc struct {
	Kind LocKind
	Sym  *ir.Sym // for LocGlobal / LocLocal
	Fn   *ir.Func
	Site int // for LocHeap: allocation-site id
	// Ctx is the immediate caller's call-site id for heap objects
	// allocated inside a callee (1-level call-path naming, the
	// granularity of Chen et al. [4]); 0 for allocations in main.
	Ctx int
}

func (l Loc) String() string {
	switch l.Kind {
	case LocGlobal:
		return l.Sym.Name
	case LocLocal:
		return l.Fn.Name + ":" + l.Sym.Name
	case LocHeap:
		if l.Ctx != 0 {
			return fmt.Sprintf("heap@%d/%d", l.Site, l.Ctx)
		}
		return fmt.Sprintf("heap@%d", l.Site)
	}
	return "loc?"
}

// LocSet is a counted multiset of abstract memory locations: the value is
// the number of times the location was observed. Membership (Has) is
// count > 0, so the set-semantics consumers (ModeProfile) are unchanged by
// the counts.
type LocSet map[Loc]uint64

// Add records one observation of a location.
func (s LocSet) Add(l Loc) { s[l]++ }

// AddN records n observations of a location.
func (s LocSet) AddN(l Loc, n uint64) { s[l] += n }

// Has reports membership (at least one observation).
func (s LocSet) Has(l Loc) bool { return s[l] > 0 }

// Count returns the observation count of a location (0 if absent).
func (s LocSet) Count(l Loc) uint64 { return s[l] }

// AddAll merges every element of t, summing counts.
func (s LocSet) AddAll(t LocSet) {
	for l, n := range t {
		s[l] += n
	}
}

// String renders the set of member locations deterministically for golden
// tests (counts are not rendered; the set view is the stable surface).
func (s LocSet) String() string {
	var names []string
	for l, n := range s {
		if n > 0 {
			names = append(names, l.String())
		}
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// Profile aggregates everything a profiling run of the interpreter
// collects.
type Profile struct {
	// BlockCount is the execution count of each basic block.
	BlockCount map[*ir.Block]uint64
	// EdgeCount[b][i] is the count of the edge b -> b.Succs[i].
	EdgeCount map[*ir.Block][]uint64

	// LoadLocs maps an indirect-load site id to the LOCs it read.
	LoadLocs map[int]LocSet
	// StoreLocs maps an indirect-store site id to the LOCs it wrote.
	StoreLocs map[int]LocSet
	// CallMod / CallRef map a call-site id to the LOCs (transitively)
	// modified / referenced during the call.
	CallMod map[int]LocSet
	CallRef map[int]LocSet

	// SiteTotal counts the dynamic executions of each reference site
	// (loads, stores and calls share one site-id space): the denominator
	// of p(alias) = LocSet count / SiteTotal. It counts every execution,
	// including ones whose address did not resolve to a nameable LOC, so
	// the per-LOC probabilities never exceed 1 for load/store sites.
	// Empty for profiles deserialized from version 1, which predates the
	// counts; consumers treat a zero total as "no count information".
	SiteTotal map[int]uint64
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{
		BlockCount: map[*ir.Block]uint64{},
		EdgeCount:  map[*ir.Block][]uint64{},
		LoadLocs:   map[int]LocSet{},
		StoreLocs:  map[int]LocSet{},
		CallMod:    map[int]LocSet{},
		CallRef:    map[int]LocSet{},
		SiteTotal:  map[int]uint64{},
	}
}

// LoadSet returns (creating if needed) the LOC set for a load site.
func (p *Profile) LoadSet(site int) LocSet {
	s := p.LoadLocs[site]
	if s == nil {
		s = LocSet{}
		p.LoadLocs[site] = s
	}
	return s
}

// StoreSet returns (creating if needed) the LOC set for a store site.
func (p *Profile) StoreSet(site int) LocSet {
	s := p.StoreLocs[site]
	if s == nil {
		s = LocSet{}
		p.StoreLocs[site] = s
	}
	return s
}

// ModSet returns (creating if needed) the mod set for a call site.
func (p *Profile) ModSet(site int) LocSet {
	s := p.CallMod[site]
	if s == nil {
		s = LocSet{}
		p.CallMod[site] = s
	}
	return s
}

// RefSet returns (creating if needed) the ref set for a call site.
func (p *Profile) RefSet(site int) LocSet {
	s := p.CallRef[site]
	if s == nil {
		s = LocSet{}
		p.CallRef[site] = s
	}
	return s
}

// AddExec records one dynamic execution of a reference site.
func (p *Profile) AddExec(site int) {
	if p.SiteTotal == nil {
		p.SiteTotal = map[int]uint64{}
	}
	p.SiteTotal[site]++
}

// Total returns the dynamic execution count of a reference site (0 when
// unknown, e.g. a version-1 profile).
func (p *Profile) Total(site int) uint64 { return p.SiteTotal[site] }

// ApplyEdges writes the collected edge counts into the CFG's Freq/EdgeFreq
// fields, normalized against the entry count of each function, so Freq is
// executions per invocation (entry block ≡ 1). Functions never entered
// (and blocks never executed) get frequency 0. The normalization is a
// per-function positive scale, which preserves every intra-function
// frequency comparison the optimizer makes.
func (p *Profile) ApplyEdges(prog *ir.Program) {
	for _, fn := range prog.Funcs {
		entry := float64(p.BlockCount[fn.Entry])
		for _, b := range fn.Blocks {
			b.Freq = 0
			counts := p.EdgeCount[b]
			b.EdgeFreq = make([]float64, len(b.Succs))
			if entry == 0 {
				continue
			}
			b.Freq = float64(p.BlockCount[b]) / entry
			for i := range b.Succs {
				if i < len(counts) {
					b.EdgeFreq[i] = float64(counts[i]) / entry
				}
			}
		}
	}
}

// StaticEstimate fills Freq/EdgeFreq with a Ball-Larus-style static
// heuristic, used when no edge profile is available: branches whose
// targets stay inside the block's innermost loop carry 9/10 of its
// outgoing flow and loop-exiting branches 1/10 (branches with no loop
// involvement split evenly), and block frequencies solve the resulting
// flow equations with the entry injecting one execution. The geometric
// back-edge weight makes loop bodies converge to ~10 executions per entry
// per nesting level, and — unlike weighting blocks by 10^depth with 50/50
// branch splits — the estimate is flow-conserving: a block's frequency
// equals the sum of its incoming edge frequencies.
func StaticEstimate(prog *ir.Program) {
	const (
		stayWeight = 0.9
		exitWeight = 0.1
	)
	for _, fn := range prog.Funcs {
		dt := ir.BuildDomTree(fn)
		_, inLoop := ir.FindLoops(fn, dt)

		// branch probabilities per block, index-aligned with Succs
		probs := make(map[*ir.Block][]float64, len(fn.Blocks))
		for _, b := range fn.Blocks {
			n := len(b.Succs)
			pr := make([]float64, n)
			probs[b] = pr
			if n == 0 {
				continue
			}
			l := inLoop[b]
			stay := 0
			if l != nil {
				for _, s := range b.Succs {
					if l.Blocks[s] {
						stay++
					}
				}
			}
			if l == nil || stay == 0 || stay == n {
				for i := range pr {
					pr[i] = 1 / float64(n)
				}
				continue
			}
			for i, s := range b.Succs {
				if l.Blocks[s] {
					pr[i] = stayWeight / float64(stay)
				} else {
					pr[i] = exitWeight / float64(n-stay)
				}
			}
		}

		// solve Freq(b) = entry(b) + Σ_{p→b} Freq(p)·prob(p→b) by
		// Gauss-Seidel iteration in reverse post-order; each pass shrinks
		// the per-loop error by the back-edge weight, so convergence is
		// geometric. Unreachable blocks are not in the RPO and keep 0.
		order := dt.Order()
		freq := make(map[*ir.Block]float64, len(order))
		for iter := 0; iter < 200; iter++ {
			delta := 0.0
			for _, b := range order {
				f := 0.0
				if b == fn.Entry {
					f = 1
				}
				for _, p := range b.Preds {
					pf := freq[p]
					if pf == 0 {
						continue
					}
					pr := probs[p]
					for i, s := range p.Succs {
						if s == b {
							f += pf * pr[i]
						}
					}
				}
				if d := math.Abs(f - freq[b]); d > delta {
					delta = d
				}
				freq[b] = f
			}
			if delta < 1e-9 {
				break
			}
		}
		for _, b := range fn.Blocks {
			b.Freq = freq[b]
			pr := probs[b]
			b.EdgeFreq = make([]float64, len(b.Succs))
			for i := range b.Succs {
				b.EdgeFreq[i] = freq[b] * pr[i]
			}
		}
	}
}
