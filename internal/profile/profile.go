// Package profile defines the profile data the speculative framework feeds
// back into the compiler: edge/block execution frequencies (for control
// speculation) and per-site abstract-memory-location (LOC) sets from alias
// profiling (for data speculation), following §3.2.1 of Lin et al.
// (PLDI 2003).
package profile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// LocKind classifies abstract memory locations.
type LocKind int

const (
	// LocGlobal is a file-scope variable.
	LocGlobal LocKind = iota
	// LocLocal is a function-scope variable (named per function; all
	// activations of a recursive function share one LOC, the usual
	// profiling granularity).
	LocLocal
	// LocHeap is a heap object named by its allocation site, the
	// granularity choice of Chen et al. (LCPC 2002), the paper's [4].
	LocHeap
)

// Loc is an abstract memory location (storage name). Comparable; used as a
// map key in LOC sets.
type Loc struct {
	Kind LocKind
	Sym  *ir.Sym // for LocGlobal / LocLocal
	Fn   *ir.Func
	Site int // for LocHeap: allocation-site id
	// Ctx is the immediate caller's call-site id for heap objects
	// allocated inside a callee (1-level call-path naming, the
	// granularity of Chen et al. [4]); 0 for allocations in main.
	Ctx int
}

func (l Loc) String() string {
	switch l.Kind {
	case LocGlobal:
		return l.Sym.Name
	case LocLocal:
		return l.Fn.Name + ":" + l.Sym.Name
	case LocHeap:
		if l.Ctx != 0 {
			return fmt.Sprintf("heap@%d/%d", l.Site, l.Ctx)
		}
		return fmt.Sprintf("heap@%d", l.Site)
	}
	return "loc?"
}

// LocSet is a set of abstract memory locations.
type LocSet map[Loc]struct{}

// Add inserts a location.
func (s LocSet) Add(l Loc) { s[l] = struct{}{} }

// Has reports membership.
func (s LocSet) Has(l Loc) bool { _, ok := s[l]; return ok }

// AddAll inserts every element of t.
func (s LocSet) AddAll(t LocSet) {
	for l := range t {
		s[l] = struct{}{}
	}
}

// String renders the set deterministically for golden tests.
func (s LocSet) String() string {
	var names []string
	for l := range s {
		names = append(names, l.String())
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// Profile aggregates everything a profiling run of the interpreter
// collects.
type Profile struct {
	// BlockCount is the execution count of each basic block.
	BlockCount map[*ir.Block]uint64
	// EdgeCount[b][i] is the count of the edge b -> b.Succs[i].
	EdgeCount map[*ir.Block][]uint64

	// LoadLocs maps an indirect-load site id to the LOCs it read.
	LoadLocs map[int]LocSet
	// StoreLocs maps an indirect-store site id to the LOCs it wrote.
	StoreLocs map[int]LocSet
	// CallMod / CallRef map a call-site id to the LOCs (transitively)
	// modified / referenced during the call.
	CallMod map[int]LocSet
	CallRef map[int]LocSet
}

// New returns an empty profile.
func New() *Profile {
	return &Profile{
		BlockCount: map[*ir.Block]uint64{},
		EdgeCount:  map[*ir.Block][]uint64{},
		LoadLocs:   map[int]LocSet{},
		StoreLocs:  map[int]LocSet{},
		CallMod:    map[int]LocSet{},
		CallRef:    map[int]LocSet{},
	}
}

// LoadSet returns (creating if needed) the LOC set for a load site.
func (p *Profile) LoadSet(site int) LocSet {
	s := p.LoadLocs[site]
	if s == nil {
		s = LocSet{}
		p.LoadLocs[site] = s
	}
	return s
}

// StoreSet returns (creating if needed) the LOC set for a store site.
func (p *Profile) StoreSet(site int) LocSet {
	s := p.StoreLocs[site]
	if s == nil {
		s = LocSet{}
		p.StoreLocs[site] = s
	}
	return s
}

// ModSet returns (creating if needed) the mod set for a call site.
func (p *Profile) ModSet(site int) LocSet {
	s := p.CallMod[site]
	if s == nil {
		s = LocSet{}
		p.CallMod[site] = s
	}
	return s
}

// RefSet returns (creating if needed) the ref set for a call site.
func (p *Profile) RefSet(site int) LocSet {
	s := p.CallRef[site]
	if s == nil {
		s = LocSet{}
		p.CallRef[site] = s
	}
	return s
}

// ApplyEdges writes the collected edge counts into the CFG's Freq/EdgeFreq
// fields, normalizing against the entry count of each function. Blocks
// never executed get frequency 0.
func (p *Profile) ApplyEdges(prog *ir.Program) {
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			b.Freq = float64(p.BlockCount[b])
			counts := p.EdgeCount[b]
			b.EdgeFreq = make([]float64, len(b.Succs))
			for i := range b.Succs {
				if i < len(counts) {
					b.EdgeFreq[i] = float64(counts[i])
				}
			}
		}
	}
}

// StaticEstimate fills Freq/EdgeFreq with a simple static heuristic (Ball-
// Larus style): loops assumed to iterate 10 times, branches split 50/50.
// Used when no edge profile is available.
func StaticEstimate(prog *ir.Program) {
	for _, fn := range prog.Funcs {
		dt := ir.BuildDomTree(fn)
		_, inLoop := ir.FindLoops(fn, dt)
		for _, b := range fn.Blocks {
			depth := 0
			if l := inLoop[b]; l != nil {
				depth = l.Depth
			}
			freq := 1.0
			for i := 0; i < depth; i++ {
				freq *= 10
			}
			b.Freq = freq
			b.EdgeFreq = make([]float64, len(b.Succs))
			for i := range b.Succs {
				b.EdgeFreq[i] = freq / float64(len(b.Succs))
			}
		}
	}
}
