// Package repro is the public API of the speculative-compilation
// framework, a reproduction of Lin et al., "A Compiler Framework for
// Speculative Analysis and Optimizations" (PLDI 2003).
//
// The pipeline compiles MiniC source through alias analysis, alias/edge
// profiling, the speculative SSA form, speculative SSAPRE (partial
// redundancy elimination, register promotion, strength reduction), and
// code generation for an EPIC-style virtual machine with an ALAT, whose
// performance counters reproduce the paper's measurements.
//
// Typical use:
//
//	c, err := repro.Compile(src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: []int64{100}})
//	res, err := c.Run([]int64{1000})
//	fmt.Println(res.Output, res.Counters.LoadsRetired)
package repro

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alias"
	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/harden"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/source"
	"repro/internal/specheck"
	"repro/internal/ssapre"
)

// SpecMode selects the data-speculation flag source.
type SpecMode int

const (
	// SpecOff disables data speculation (the paper's O3 baseline:
	// non-speculative PRE over type-based alias analysis).
	SpecOff SpecMode = iota
	// SpecProfile drives speculation from an alias-profiling run
	// (paper §3.2.1).
	SpecProfile
	// SpecHeuristic drives speculation from the three heuristic rules
	// (paper §3.2.2); no alias profile is needed.
	SpecHeuristic
	// SpecCost drives speculation from alias probabilities: a site's
	// weak updates stay ignorable only while the expected recovery cost
	// (p(alias) × check-miss latency) is below the expected savings
	// ((1−p) × cycles saved by promotion). Probabilities come from the
	// counted alias profile; the cost terms from Config.Machine; the
	// break-even point shifts with Config.SpecThreshold.
	SpecCost
)

func (m SpecMode) String() string {
	switch m {
	case SpecOff:
		return "off"
	case SpecProfile:
		return "profile"
	case SpecHeuristic:
		return "heuristic"
	case SpecCost:
		return "cost"
	}
	return "specmode?"
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (m SpecMode) coreMode() core.Mode {
	switch m {
	case SpecProfile:
		return core.ModeProfile
	case SpecHeuristic:
		return core.ModeHeuristic
	case SpecCost:
		return core.ModeCost
	}
	return core.ModeNone
}

// Config controls a compilation.
type Config struct {
	// Spec selects the data-speculation mode.
	Spec SpecMode
	// NoControlSpec disables profile-guided control speculation
	// (insertion at non-down-safe Φs), which is otherwise on whenever
	// the optimizer runs (it is part of the paper's baseline SSAPRE).
	NoControlSpec bool
	// OptimizeOff disables PRE entirely (unoptimized code, for limit
	// studies and debugging).
	OptimizeOff bool
	// NoArith restricts PRE to loads only (register promotion alone).
	NoArith bool
	// NoStrength disables the strength-reduction / LFTR client.
	NoStrength bool
	// NoTypeBasedAA disables type-based alias disambiguation (ablation;
	// the paper's baseline includes it).
	NoTypeBasedAA bool
	// SpecThreshold scales the recovery side of the SpecCost break-even
	// test: a site speculates while (1−p)·saved > threshold·p·recover.
	// 1 is the neutral cost model; larger values demand better odds
	// before speculating; <=0 means 1. Ignored outside SpecCost.
	SpecThreshold float64
	// ProfileArgs is the training input for the alias/edge profiling run
	// (used by SpecProfile and for edge profiles; when profiling fails
	// or is skipped, a static Ball-Larus-style estimate is used).
	ProfileArgs []int64
	// ProfileJSON, when non-empty, supplies a previously collected
	// profile (from CollectProfile or `aliasprof -o`) instead of running
	// the training input at compile time — the paper's separate
	// profile-then-recompile feedback workflow.
	ProfileJSON []byte
	// Rounds overrides the number of PRE rounds (default 2).
	Rounds int
	// Schedule enables the latency-driven list scheduler (the
	// instruction-scheduling client of the paper's Fig. 3). Its effect
	// is visible under the pipelined VM timing model
	// (Machine.Pipelined).
	Schedule bool
	// Machine tunes the VM model; zero value uses machine.Defaults().
	Machine machine.Config
	// AggressivePromotion treats every chi as ignorable (no profile
	// consultation) — the paper's Fig. 12 "aggressive register
	// promotion" upper bound. Implies data speculation with empty
	// profiles.
	AggressivePromotion bool
	// Workers bounds the per-function parallelism of the pipeline
	// (alias refinement/annotation, SSAPRE, IR verification, scheduling
	// and code generation). 0 uses one worker per core; 1 reproduces the
	// fully serial pipeline bit-for-bit and is the determinism oracle
	// the parallel paths are tested against.
	Workers int
	// VerifyPasses runs the speculation-soundness checker
	// (internal/specheck) after every pipeline stage — alias annotation,
	// flag assignment, each SSAPRE round, out-of-SSA, scheduling and code
	// generation — attributing any violation to the stage that introduced
	// it. Compilation fails with a *specheck.Error on the first dirty
	// stage. Roughly doubles compile time; meant for CI, debugging and
	// the `-verify-passes` / speclint surfaces.
	VerifyPasses bool
	// Harden selects a speculative-leak mitigation policy ("fence" or
	// "hoist", see internal/harden) applied to the generated code after
	// codegen: every sink specheck's Layer 3 taint analysis reports — a
	// load/store address or branch condition fed by a
	// speculatively-loaded, not-yet-checked value — is closed by a
	// fence or a hoisted duplicate check, and Layer 3 is re-run to
	// prove zero residual leaks (a residual is a compile error). Empty
	// means no hardening. The mitigation changes generated code, so it
	// participates in trace fingerprints and cache keys automatically.
	Harden string `json:",omitempty"`
	// FnSpec overrides the speculation tier per function (keyed by
	// function name): the named function's chi/mu flags are assigned
	// under its own mode and threshold instead of the program-wide Spec
	// and SpecThreshold. This is the compile side of adaptive tiering —
	// the server demotes a mis-speculating function here without
	// touching the rest of the program. Flag assignment is a per-symbol
	// decision baked into the IR before the speculative walk runs, so
	// the override is sound under any profile-guided global Spec; under
	// SpecOff or SpecHeuristic the global walk mode ignores profile
	// flags and overrides have no effect. Functions absent from the map
	// compile at the program-wide tier.
	FnSpec map[string]FnSpec `json:",omitempty"`
}

// FnSpec is one function's speculation-tier override (see
// Config.FnSpec). The zero value means SpecOff: every update flagged,
// no data speculation in the function.
type FnSpec struct {
	// Spec is the function's flag-assignment mode.
	Spec SpecMode `json:",omitempty"`
	// SpecThreshold scales the recovery side of the function's
	// break-even test, exactly as Config.SpecThreshold does globally.
	// Ignored unless Spec is SpecCost; <=0 means 1.
	SpecThreshold float64 `json:",omitempty"`
}

// Compilation is a compiled program plus everything the experiments need.
type Compilation struct {
	Config  Config
	Source  string
	Prog    *ir.Program // optimized IR
	Ref     *ir.Program // unoptimized reference IR (fresh compile)
	Code    *machine.Program
	Stats   map[string]*ssapre.Stats
	Profile *profile.Profile
	Alias   *alias.Result
	// ProfileErr records a failed training run: the profiling
	// interpreter faulted on Config.ProfileArgs and the compilation fell
	// back to the static Ball-Larus estimate with no alias profile.
	// Compile itself still succeeds (the fallback is well-defined), but
	// profile-guided measurements are meaningless under it, so the
	// experiments treat a non-nil ProfileErr as fatal.
	ProfileErr error
	// Harden reports what the leak-mitigation pass did (nil unless
	// Config.Harden was set): leaks found, fences inserted, checks
	// hoisted, and the residual count (always zero on success).
	Harden *harden.Report `json:",omitempty"`

	fpOnce sync.Once
	fp     [32]byte // lazily computed Code fingerprint for trace keying
}

// The compilation cache (internal/cache): the in-memory tier memoizes
// one pristine lowered program per source hash plus the serialized
// alias/edge profile per (source, options, training-args) key, and the
// optional on-disk tier (SetCacheDir) persists the profiles across
// processes. Compile, CollectProfile, Reference and ReuseLimit all
// start from the same parse, and an experiment sweep re-compiles each
// workload under many config variants, so N variants pay for one parse
// and one profiling interpreter run instead of N of each. Masters in
// the cache are never mutated — every caller receives a deep ir.Clone —
// which is what makes sharing across concurrent compiles sound.
const compCacheCap = 512

var (
	compCache     = cache.New(compCacheCap)
	profilingRuns atomic.Uint64
)

// frontend parses + lowers IR from source, memoized by source hash; the
// caller owns the returned clone outright.
func frontend(src string) (*ir.Program, error) {
	return frontendCtx(context.Background(), src)
}

func frontendCtx(ctx context.Context, src string) (*ir.Program, error) {
	key := cache.KeyOf([]byte("frontend"), []byte(src))
	v, err := compCache.GetObjectCtx(ctx, key, func() (any, error) {
		f, err := source.Parse(src)
		if err != nil {
			return nil, err
		}
		return source.Lower(f)
	})
	if err != nil {
		return nil, err
	}
	return ir.Clone(v.(*ir.Program)), nil
}

// profileCacheVersion stamps every profile cache key; bump it whenever
// the meaning of the computation changes (refinement, the interpreter's
// collection semantics, or the serialization), which invalidates stale
// persistent entries by construction.
const profileCacheVersion = 2

// profileKey is the content-addressed key of a profiling run: source
// text, the options that shape reference-site ids and set contents
// (refinement pipeline version, TBAA flag), and the training input.
func profileKey(src string, cfg Config) cache.Key {
	opts := fmt.Sprintf("v%d tbaa=%t", profileCacheVersion, !cfg.NoTypeBasedAA)
	args := make([]byte, 8*len(cfg.ProfileArgs))
	for i, a := range cfg.ProfileArgs {
		binary.LittleEndian.PutUint64(args[i*8:], uint64(a))
	}
	return cache.KeyOf([]byte("profile"), []byte(src), []byte(opts), args)
}

// profileData returns the serialized alias/edge profile for (src,
// options, training args), memoized in memory and — when a cache dir is
// set — persisted on disk. The computation is canonical: frontend, the
// same flow-sensitive refinement Compile applies (so reference-site ids
// line up), one profiling interpreter run, profile.Marshal. Compile,
// CollectProfile and every experiment variant share it, so a sweep pays
// for one interpreter run per key no matter how many variants it
// compiles, and a warm-started process pays for none.
func profileData(src string, cfg Config) ([]byte, error) {
	return profileDataCtx(context.Background(), src, cfg)
}

func profileDataCtx(ctx context.Context, src string, cfg Config) ([]byte, error) {
	return compCache.GetBytesCtx(ctx, profileKey(src, cfg), func() ([]byte, error) {
		profilingRuns.Add(1)
		prog, err := frontendCtx(ctx, src)
		if err != nil {
			return nil, err
		}
		alias.RefineWorkers(prog, cfg.Workers)
		prof := profile.New()
		if _, err := interp.Run(prog, interp.Options{
			CollectEdges: true, CollectAlias: true, Profile: prof, Args: cfg.ProfileArgs,
		}); err != nil {
			return nil, err
		}
		return profile.Marshal(prog, prof)
	})
}

// ProfilingRuns counts the profiling interpreter runs actually executed
// (cache misses); sweeps assert "profile once" against its deltas.
func ProfilingRuns() uint64 { return profilingRuns.Load() }

// CacheCounters is a snapshot of the compilation cache's cumulative
// hit/miss/compute/evict counters (see internal/cache.Stats).
type CacheCounters struct {
	MemHits      uint64
	MemMisses    uint64
	DiskHits     uint64
	DiskMisses   uint64
	RemoteHits   uint64
	RemoteMisses uint64
	RemotePuts   uint64
	Computes     uint64
	Evictions    uint64
	Corrupt      uint64
}

func (s CacheCounters) String() string {
	return fmt.Sprintf("mem %d/%d hit/miss, disk %d/%d hit/miss, remote %d/%d hit/miss (%d puts), %d computes, %d evictions, %d corrupt",
		s.MemHits, s.MemMisses, s.DiskHits, s.DiskMisses, s.RemoteHits, s.RemoteMisses, s.RemotePuts, s.Computes, s.Evictions, s.Corrupt)
}

// CacheStats snapshots the compilation cache counters.
func CacheStats() CacheCounters {
	s := compCache.Stats()
	return CacheCounters{
		MemHits: s.MemHits, MemMisses: s.MemMisses,
		DiskHits: s.DiskHits, DiskMisses: s.DiskMisses,
		RemoteHits: s.RemoteHits, RemoteMisses: s.RemoteMisses, RemotePuts: s.RemotePuts,
		Computes: s.Computes, Evictions: s.Evictions, Corrupt: s.Corrupt,
	}
}

// SetCacheRemote installs (or, with nil, removes) the peer/remote tier
// of the compilation cache: byte entries — serialized profiles and
// recorded traces — missing from memory and disk are fetched from fleet
// peers before being computed, and computed entries are pushed to the
// key's owning peer, so a program profiled on any node is profiled once
// fleet-wide.
func SetCacheRemote(r cache.Remote) { compCache.SetRemote(r) }

// CachePeekBytes serves the peer side of the remote tier (specd's
// GET /cache/{key}): the completed byte entry for key from the memory
// or disk tier only — it never computes and never consults this
// process's own remote tier, so peer lookups cannot recurse.
func CachePeekBytes(key cache.Key) ([]byte, bool) { return compCache.PeekBytes(key) }

// CachePutBytes serves the peer side of remote-tier stores (specd's
// PUT /cache/{key}): the entry is installed in the memory tier and
// written through to disk. Existing entries win; values are
// content-addressed, so any copy is as good as the first.
func CachePutBytes(key cache.Key, data []byte) { compCache.PutBytes(key, data) }

// TraceCacheBytes reports the heap footprint of every decoded
// *machine.Trace resident in the in-memory cache tier, in bytes. The
// specd /metrics endpoint exposes it as the specd_trace_bytes gauge so
// operators can see what record-and-replay reuse costs in memory.
func TraceCacheBytes() int64 {
	return compCache.SumObjects(func(v any) int64 {
		if t, ok := v.(*machine.Trace); ok {
			return t.Bytes()
		}
		return 0
	})
}

// SetCacheDir enables the persistent on-disk cache tier under dir
// (serialized profiles survive the process; a later run warm-starts
// from them), or disables it when dir is empty. Corrupt or stale
// entries are discarded and recomputed, never surfaced as errors.
func SetCacheDir(dir string) error { return compCache.SetDir(dir) }

// SetCacheEnabled turns compilation-pipeline memoization off or back on
// (default on). With the cache off every Compile re-parses and
// re-profiles from scratch — the oracle for cache-transparency tests.
func SetCacheEnabled(on bool) { compCache.SetEnabled(on) }

// ResetCaches drops the whole in-memory cache tier (parses and
// profiles); the persistent tier, if configured, stays. Tests and
// benchmarks use it to measure cold starts.
func ResetCaches() { compCache.Reset() }

// ResetFrontendCache drops every memoized parse (and profile). Kept as
// the historical name; it is ResetCaches.
func ResetFrontendCache() { ResetCaches() }

// Compile runs the full pipeline on MiniC source.
func Compile(src string, cfg Config) (*Compilation, error) {
	return CompileCtx(context.Background(), src, cfg)
}

// CompileCtx is Compile with cancellation: the frontend and profiling
// cache lookups honor ctx (a caller waiting on another compile's
// in-flight work returns promptly), and the pipeline checks ctx at
// every phase boundary — refinement, profiling, SSAPRE, verification,
// scheduling, code generation — so a dropped client or an expired
// deadline stops the compilation at the next phase instead of running
// it to completion.
func CompileCtx(ctx context.Context, src string, cfg Config) (*Compilation, error) {
	// one frontend run (or cache hit) feeds both programs: the reference
	// IR stays pristine and the optimizer works on a detached clone
	ref, err := frontendCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	prog := ir.Clone(ref)
	c := &Compilation{Config: cfg, Source: src, Prog: prog, Ref: ref}

	// verify surfaces specheck violations as a compile error; the
	// *specheck.Error stays reachable through errors.As for callers that
	// want the structured violation list (speclint, specd's counters).
	verify := func(vs []specheck.Violation) error {
		if err := specheck.AsError(vs); err != nil {
			return fmt.Errorf("repro: %w", err)
		}
		return nil
	}

	if !cfg.OptimizeOff {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// flow-sensitive refinement (paper Fig. 4): devirtualize
		// references whose address resolves to a single variable
		alias.RefineWorkers(prog, cfg.Workers)
		ar := alias.Analyze(prog, alias.Options{TypeBased: !cfg.NoTypeBasedAA})
		ar.AnnotateWorkers(prog, cfg.Workers)
		c.Alias = ar
		env := &specheck.Env{Alias: ar}
		if cfg.VerifyPasses {
			if err := verify(specheck.CheckAnnotated(prog, env, "alias-annotate")); err != nil {
				return nil, err
			}
		}

		var prof *profile.Profile
		if len(cfg.ProfileJSON) > 0 {
			p, err := profile.Unmarshal(prog, cfg.ProfileJSON)
			if err != nil {
				return nil, fmt.Errorf("repro: %w", err)
			}
			prof = p
			prof.ApplyEdges(prog)
			c.Profile = prof
		} else {
			// the training run is memoized: every variant of a sweep
			// that shares (source, options, training args) reuses one
			// interpreter run's serialized profile
			data, perr := profileDataCtx(ctx, src, cfg)
			if isCtxErr(perr) {
				// cancellation is not a failed training run; surface it
				return nil, perr
			}
			if perr == nil {
				p, err := profile.Unmarshal(prog, data)
				if err != nil {
					return nil, fmt.Errorf("repro: cached profile: %w", err)
				}
				prof = p
				prof.ApplyEdges(prog)
				c.Profile = prof
			} else {
				// the training input faulted: fall back to the static
				// estimate, but record the failure — silently degrading
				// would skew every profile-guided measurement
				c.ProfileErr = fmt.Errorf("repro: profiling run failed: %w", perr)
				profile.StaticEstimate(prog)
				prof = nil
			}
		}

		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mode := cfg.Spec.coreMode()
		flagProf := prof
		if cfg.AggressivePromotion {
			// ignore every alias: empty profile sets leave all chis weak
			mode = core.ModeProfile
			flagProf = profile.New()
		}
		pol := core.PolicyFor(cfg.Machine, cfg.SpecThreshold)
		var fnOv map[string]core.FnOverride
		if len(cfg.FnSpec) > 0 {
			fnOv = make(map[string]core.FnOverride, len(cfg.FnSpec))
			for name, fs := range cfg.FnSpec {
				fnOv[name] = core.FnOverride{
					Mode:   fs.Spec.coreMode(),
					Policy: core.PolicyFor(cfg.Machine, fs.SpecThreshold),
				}
			}
		}
		core.AssignFlagsTiered(prog, ar, flagProf, mode, pol, fnOv)
		env.Prof, env.Mode, env.Policy, env.FnOverrides = flagProf, mode, pol, fnOv
		if cfg.VerifyPasses {
			if err := verify(specheck.CheckAnnotated(prog, env, "assign-flags")); err != nil {
				return nil, err
			}
			if err := verify(specheck.CheckFlags(prog, env, "assign-flags")); err != nil {
				return nil, err
			}
		}

		var verifyHook func(fn *ir.Func, pass string, inSSA bool) error
		if cfg.VerifyPasses {
			verifyHook = func(fn *ir.Func, pass string, inSSA bool) error {
				if inSSA {
					return verify(specheck.CheckSSAFunc(fn, pass))
				}
				return verify(specheck.CheckPostSSA(fn, pass))
			}
		}
		controlSpec := !cfg.NoControlSpec
		stats, err := ssapre.Run(prog, ssapre.Options{
			DataSpec:    mode,
			ControlSpec: controlSpec,
			Rounds:      cfg.Rounds,
			Alias:       ar,
			NoArith:     cfg.NoArith,
			NoStrength:  cfg.NoStrength,
			Workers:     cfg.Workers,
			VerifyHook:  verifyHook,
		})
		if err != nil {
			return nil, err
		}
		c.Stats = stats
		if err := par.EachCtx(ctx, cfg.Workers, len(prog.Funcs), func(i int) error {
			if err := ir.Verify(prog.Funcs[i]); err != nil {
				return fmt.Errorf("repro: optimizer produced invalid IR: %w", err)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Schedule {
		var before specheck.MemOrder
		if cfg.VerifyPasses {
			before = specheck.SnapshotMemOrder(prog)
		}
		codegen.ScheduleWorkers(prog, cfg.Workers)
		if cfg.VerifyPasses {
			if err := verify(specheck.CheckSchedule(prog, before, "schedule")); err != nil {
				return nil, err
			}
		}
	}
	code, err := codegen.LowerWorkers(prog, cfg.Workers)
	if err != nil {
		return nil, err
	}
	if cfg.VerifyPasses {
		if err := verify(specheck.CheckMachine(code, "codegen")); err != nil {
			return nil, err
		}
	}
	if cfg.Harden != "" {
		pol, err := harden.ParsePolicy(cfg.Harden)
		if err != nil {
			return nil, fmt.Errorf("repro: %w", err)
		}
		rep, err := harden.Apply(code, pol)
		if err != nil {
			return nil, fmt.Errorf("repro: %w", err)
		}
		c.Harden = rep
		// prove zero residual leaks on every hardened build, verified
		// pipeline or not; a violation here is a mitigation bug
		if err := verify(specheck.CheckLeaks(code, "harden")); err != nil {
			return nil, err
		}
		if cfg.VerifyPasses {
			if err := verify(specheck.CheckMachine(code, "harden")); err != nil {
				return nil, err
			}
		}
	}
	c.Code = code
	return c, nil
}

// The machine-trace path: one functional machine.Record per (program
// fingerprint, args, resource limits) captures the architectural event
// stream, and every timing measurement becomes a cheap machine.Replay
// walk. Latencies, ALATSize and Pipelined are deliberately absent from
// the key — re-timing under them is exactly what replay is for, so a
// whole sensitivity sweep shares one recorded trace. Resource limits
// (MaxSteps, MaxCallDepth) and StackSlots are in the key because they
// change what the run does: a smaller limit faults, and the cache
// memoizes errors, so excluding them would poison larger-limit callers;
// StackSlots additionally shifts concrete addresses (Replay refuses a
// mismatch outright). Traces ride the same two-tier cache as profiles:
// the decoded *machine.Trace lives in the memory tier, its serialized
// form spills to the on-disk tier when SetCacheDir is active.

var traceDisabled atomic.Bool

// SetTraceEnabled turns the record-and-replay machine path off or back
// on (default on). With tracing off every Run and Evaluate executes the
// VM directly — the oracle the replay path is differentially tested
// against, and the `-no-trace` escape hatch.
func SetTraceEnabled(on bool) { traceDisabled.Store(!on) }

// TraceEnabled reports whether the record-and-replay path is active.
func TraceEnabled() bool { return !traceDisabled.Load() }

// traceCacheVersion stamps trace cache keys; bump it whenever the
// trace format or the recorded event set changes.
const traceCacheVersion = 4

// fingerprint returns the compiled program's content hash, computed
// once per Compilation.
func (c *Compilation) fingerprint() [32]byte {
	c.fpOnce.Do(func() { c.fp = c.Code.Fingerprint() })
	return c.fp
}

// traceFor returns the recorded architectural trace for (c.Code, args)
// under mcfg's memory layout and resource limits, recording it on the
// first request. A run that faults yields the same error direct
// execution would (memoized like any other cache entry — sound because
// the limits are part of the key).
func (c *Compilation) traceFor(ctx context.Context, args []int64, mcfg machine.Config) (*machine.Trace, error) {
	n := mcfg.Normalized()
	fp := c.fingerprint()
	argb := make([]byte, 8*len(args))
	for i, a := range args {
		binary.LittleEndian.PutUint64(argb[i*8:], uint64(a))
	}
	lim := fmt.Sprintf("v%d slots=%d steps=%d depth=%d",
		traceCacheVersion, n.StackSlots, n.MaxSteps, n.MaxCallDepth)
	key := cache.KeyOf([]byte("trace"), fp[:], argb, []byte(lim))
	v, err := compCache.GetObjectCtx(ctx, key, func() (any, error) {
		data, err := compCache.GetBytesCtx(ctx, cache.KeyOf([]byte("tracebytes"), fp[:], argb, []byte(lim)),
			func() ([]byte, error) {
				tr, err := machine.Record(c.Code, args, n)
				if err != nil {
					return nil, err
				}
				return tr.Marshal(), nil
			})
		if err != nil {
			return nil, err
		}
		return machine.UnmarshalTrace(data)
	})
	if err != nil {
		return nil, err
	}
	return v.(*machine.Trace), nil
}

// runMachine executes the compiled program under mcfg, through the
// record-and-replay path when enabled (with direct execution as the
// fallback), directly otherwise.
func (c *Compilation) runMachine(ctx context.Context, args []int64, mcfg machine.Config) (*machine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if TraceEnabled() {
		tr, err := c.traceFor(ctx, args, mcfg)
		if err != nil {
			// the recording run faulted: this is the same error direct
			// execution under these limits would produce
			return nil, err
		}
		res, err := machine.Replay(c.Code, tr, mcfg, nil)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, machine.ErrTraceMismatch) {
			return nil, err
		}
		// layout mismatch (cannot happen via this key, but stay safe)
	}
	return machine.Run(c.Code, args, mcfg, nil)
}

// Run executes the compiled program on the EPIC VM (via the trace
// replay path when enabled; see SetTraceEnabled).
func (c *Compilation) Run(args []int64) (*machine.Result, error) {
	return c.RunCtx(context.Background(), args)
}

// RunCtx is Run with cancellation: the trace-cache lookup honors ctx (a
// caller waiting on another run's in-flight recording returns promptly
// when cancelled) and a done ctx stops the run before it starts.
func (c *Compilation) RunCtx(ctx context.Context, args []int64) (*machine.Result, error) {
	return c.runMachine(ctx, args, c.Config.Machine)
}

// Evaluate re-times the compiled program on args under every machine
// configuration in cfgs — the paper's §5 sensitivity-style sweeps. With
// tracing enabled the program executes functionally once per distinct
// (args, limits, layout) key and each Config costs only a trace walk;
// replays fan out across workers sharing the recorded trace read-only.
// Results are index-aligned with cfgs.
func (c *Compilation) Evaluate(args []int64, cfgs []machine.Config, workers int) ([]*machine.Result, error) {
	return c.EvaluateCtx(context.Background(), args, cfgs, workers)
}

// EvaluateCtx is Evaluate with cancellation threaded through the
// batched fan-out (internal/par) and the trace cache's singleflight:
// when ctx is done, idle workers stop claiming batches, waiters blocked
// on another caller's recording return, and EvaluateCtx itself returns
// ctx.Err() promptly without waiting for replays already in flight
// (which finish and are dropped).
//
// With tracing enabled the grid is grouped by the non-timing part of
// each Config — normalized (StackSlots, MaxSteps, MaxCallDepth), which
// is exactly the trace cache key — and every group re-times through one
// machine.ReplayBatch call on the group's shared trace, so all the
// pipelined points of a sweep cost one instruction walk instead of one
// each. Groups are split into up to `workers` sub-batches to keep the
// fan-out parallel; per-config results are independent of batch
// composition (pinned by the differential tests), so worker count never
// changes the output. Because the grouping key equals the trace key,
// every config's limits are at least as generous as its own trace's
// recorded run — a config whose limits fault does so during recording,
// inside traceFor, exactly as on the unbatched path.
func (c *Compilation) EvaluateCtx(ctx context.Context, args []int64, cfgs []machine.Config, workers int) ([]*machine.Result, error) {
	results := make([]*machine.Result, len(cfgs))
	if !TraceEnabled() {
		if err := par.EachCtx(ctx, workers, len(cfgs), func(i int) error {
			res, err := c.runMachine(ctx, args, cfgs[i])
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		}); err != nil {
			return nil, err
		}
		return results, nil
	}

	type traceKey struct {
		slots int
		steps int64
		depth int
	}
	groups := make(map[traceKey][]int)
	var order []traceKey
	for i, cfg := range cfgs {
		n := cfg.Normalized()
		k := traceKey{n.StackSlots, n.MaxSteps, n.MaxCallDepth}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	// split each group into up to `workers` contiguous sub-batches so a
	// single-group grid still spreads across the pool
	w := par.Workers(workers)
	var units [][]int
	for _, k := range order {
		idxs := groups[k]
		nu := w
		if nu > len(idxs) {
			nu = len(idxs)
		}
		for u := 0; u < nu; u++ {
			lo, hi := u*len(idxs)/nu, (u+1)*len(idxs)/nu
			units = append(units, idxs[lo:hi])
		}
	}
	if err := par.EachCtx(ctx, workers, len(units), func(u int) error {
		idxs := units[u]
		tr, err := c.traceFor(ctx, args, cfgs[idxs[0]])
		if err != nil {
			// the recording run faulted: this is the same error direct
			// execution under these limits would produce
			return err
		}
		sub := make([]machine.Config, len(idxs))
		for j, i := range idxs {
			sub[j] = cfgs[i]
		}
		res, err := machine.ReplayBatch(c.Code, tr, sub)
		if err != nil {
			if !errors.Is(err, machine.ErrTraceMismatch) {
				return err
			}
			// layout mismatch (cannot happen via this key, but stay safe)
			for _, i := range idxs {
				r, rerr := machine.Run(c.Code, args, cfgs[i], nil)
				if rerr != nil {
					return rerr
				}
				results[i] = r
			}
			return nil
		}
		for j, i := range idxs {
			results[i] = res[j]
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return results, nil
}

// RunReference interprets the unoptimized IR (the semantic oracle).
func (c *Compilation) RunReference(args []int64) (*interp.Result, error) {
	return c.RunReferenceCtx(context.Background(), args)
}

// RunReferenceCtx is RunReference with cancellation: a done ctx stops
// the interpretation before it starts.
func (c *Compilation) RunReferenceCtx(ctx context.Context, args []int64) (*interp.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return interp.Run(c.Ref, interp.Options{Args: args})
}

// TotalStats sums optimizer statistics over all functions.
func (c *Compilation) TotalStats() ssapre.Stats {
	var total ssapre.Stats
	for _, s := range c.Stats {
		total.Add(*s)
	}
	return total
}

// CollectProfile runs the alias/edge profiler on src with the given
// training input and returns the serialized profile, suitable for
// Config.ProfileJSON in a later Compile. It is the same canonical,
// cached computation Compile uses (frontend, refinement, one
// interpreter run), so collecting a profile warms the cache for a later
// Compile with the same training args — and vice versa.
func CollectProfile(src string, args []int64) ([]byte, error) {
	return CollectProfileCtx(context.Background(), src, args)
}

// CollectProfileCtx is CollectProfile with cancellation (the cache
// lookup and any nested frontend wait honor ctx).
func CollectProfileCtx(ctx context.Context, src string, args []int64) ([]byte, error) {
	return profileDataCtx(ctx, src, Config{ProfileArgs: args})
}

// Reference interprets the unoptimized program and returns its result.
func Reference(src string, args []int64) (*interp.Result, error) {
	prog, err := frontend(src)
	if err != nil {
		return nil, err
	}
	return interp.Run(prog, interp.Options{Args: args})
}

// ReuseLimit runs the Fig. 12 simulation-based load-reuse limit study on
// the unoptimized program: references with identical syntax trees form
// equivalence classes and repeats of the same (class, address, value) are
// counted as potential speculative reuses.
func ReuseLimit(src string, args []int64) (*interp.ReuseSim, error) {
	return ReuseLimitWorkers(src, args, 1)
}

// ReuseLimitWorkers is ReuseLimit with the simulation sharded by
// equivalence class across workers: one interpreter run records the
// dynamic memory-access stream, then the reuse walk partitions it per
// class shard (the state is keyed by (class, address), so shards are
// independent and the merged totals match the serial walk exactly).
// workers <= 1 runs the simulation inline during interpretation — the
// historical serial path and the equivalence oracle.
func ReuseLimitWorkers(src string, args []int64, workers int) (*interp.ReuseSim, error) {
	return ReuseLimitWorkersCtx(context.Background(), src, args, workers)
}

// ReuseLimitWorkersCtx is ReuseLimitWorkers with cancellation: the
// frontend cache lookup honors ctx and a done ctx stops the simulation
// before the interpreter run starts.
func ReuseLimitWorkersCtx(ctx context.Context, src string, args []int64, workers int) (*interp.ReuseSim, error) {
	prog, err := frontendCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	keys := ir.SiteSyntaxKeys(prog)
	classes := map[int]int{}
	classIDs := map[string]int{}
	for site, key := range keys {
		id, ok := classIDs[key]
		if !ok {
			id = len(classIDs)
			classIDs[key] = id
		}
		classes[site] = id
	}
	if par.Workers(workers) <= 1 {
		sim := interp.NewReuseSim(classes)
		if _, err := interp.Run(prog, interp.Options{Args: args, Reuse: sim}); err != nil {
			return nil, err
		}
		return sim, nil
	}
	tr := &interp.MemTrace{}
	if _, err := interp.Run(prog, interp.Options{Args: args, MemTrace: tr}); err != nil {
		return nil, err
	}
	return interp.ShardedReuse(classes, tr, workers), nil
}

// PipelinedMachine returns the default machine model with the pipelined
// scoreboard timing enabled, for use in Config.Machine.
func PipelinedMachine() machine.Config {
	cfg := machine.Defaults()
	cfg.Pipelined = true
	return cfg
}
