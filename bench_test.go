package repro_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/workloads"
)

// The benchmarks in this file regenerate every table and figure of the
// paper's evaluation (§5). Each reports the paper's metrics through
// b.ReportMetric, so `go test -bench=. -benchmem` prints the reproduced
// series next to wall-clock compile+run time:
//
//	BenchmarkSec51Smvp          — §5.1 case study (check ratio, speedups)
//	BenchmarkFig10LoadReduction — Fig. 10 (per-benchmark load reduction / speedup)
//	BenchmarkFig11Misspeculation— Fig. 11 (check ratio, mis-speculation ratio)
//	BenchmarkFig12Potential     — Fig. 12 (reuse limit, aggressive bound)
//	BenchmarkHeuristicVsProfile — §5.2 (heuristic rules vs alias profile)
//	BenchmarkAblation*          — design-choice ablations from DESIGN.md
//	BenchmarkPipeline*          — compiler throughput on the workload suite

// BenchmarkSec51Smvp regenerates the §5.1 equake/smvp case study.
// Paper shape: ~40% of loads become checks; speculative speedup sits
// between the base and the manually tuned (no-check) bound.
func BenchmarkSec51Smvp(b *testing.B) {
	var s experiments.Smvp
	for i := 0; i < b.N; i++ {
		var err error
		s, err = experiments.RunSmvp()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.ChecksPerLoad*100, "checks/loads_%")
	b.ReportMetric(s.Speedup*100, "speedup_%")
	b.ReportMetric(s.ManualSpeedup*100, "manual_bound_%")
}

// benchRows runs the full workload sweep once per iteration and reports a
// metric per benchmark.
func benchRows(b *testing.B, metric func(experiments.Row) (string, float64)) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunAll()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name, v := metric(r)
		b.ReportMetric(v, r.Name+"_"+name)
	}
}

// BenchmarkFig10LoadReduction regenerates Fig. 10: dynamic-load reduction
// and speedup of speculative register promotion per benchmark.
// Paper shape: art, ammp, equake, mcf, twolf reduce loads noticeably;
// gzip/vpr/bzip2 barely move; load reduction does not translate 1:1 into
// speedup.
func BenchmarkFig10LoadReduction(b *testing.B) {
	benchRows(b, func(r experiments.Row) (string, float64) {
		return "loadred_%", r.LoadReduction() * 100
	})
}

// BenchmarkFig10Speedup reports Fig. 10's execution-time series.
func BenchmarkFig10Speedup(b *testing.B) {
	benchRows(b, func(r experiments.Row) (string, float64) {
		return "speedup_%", r.Speedup() * 100
	})
}

// BenchmarkFig11Misspeculation regenerates Fig. 11: percentage of check
// loads over loads retired and the mis-speculation ratio.
// Paper shape: miss ratios are small everywhere; gzip has the largest
// ratio on a negligible check count.
func BenchmarkFig11Misspeculation(b *testing.B) {
	benchRows(b, func(r experiments.Row) (string, float64) {
		return "missratio_%", r.MissRatio() * 100
	})
}

// BenchmarkFig11CheckRatio reports the companion check-load series.
func BenchmarkFig11CheckRatio(b *testing.B) {
	benchRows(b, func(r experiments.Row) (string, float64) {
		return "checkratio_%", r.CheckRatio() * 100
	})
}

// BenchmarkFig12Potential regenerates Fig. 12: the simulation-based
// load-reuse limit per benchmark. Paper shape: the limit upper-bounds and
// correlates with the achieved reduction (gzip's low potential predicts
// its negligible gain).
func BenchmarkFig12Potential(b *testing.B) {
	benchRows(b, func(r experiments.Row) (string, float64) {
		return "reuselimit_%", r.ReusePotential * 100
	})
}

// BenchmarkFig12Aggressive reports Fig. 12's second method: aggressive
// register promotion ignoring all aliases.
func BenchmarkFig12Aggressive(b *testing.B) {
	benchRows(b, func(r experiments.Row) (string, float64) {
		return "aggressive_%", r.AggressiveReduction * 100
	})
}

// BenchmarkHeuristicVsProfile regenerates the §5.2 comparison: load
// reduction of the heuristic-rules variant. Paper shape: comparable to
// the profile-guided version.
func BenchmarkHeuristicVsProfile(b *testing.B) {
	benchRows(b, func(r experiments.Row) (string, float64) {
		return "heur_loadred_%", r.HeurLoadReduction() * 100
	})
}

// ablationCycles measures the ref-input cycle count of one configuration
// of one workload.
func ablationCycles(b *testing.B, name string, cfg repro.Config) float64 {
	b.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %s", name)
	}
	cfg.ProfileArgs = w.ProfileArgs
	var cycles int64
	for i := 0; i < b.N; i++ {
		c, err := repro.Compile(w.Src, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(w.RefArgs)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Counters.Cycles
	}
	return float64(cycles)
}

// BenchmarkAblationDataSpec: equake with and without data speculation
// (the headline delta of the paper).
func BenchmarkAblationDataSpec(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  repro.Config
	}{
		{"full", repro.Config{Spec: repro.SpecProfile}},
		{"nodata", repro.Config{Spec: repro.SpecOff}},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportMetric(ablationCycles(b, "equake", c.cfg), "cycles")
		})
	}
}

// BenchmarkAblationControlSpec: control speculation on/off (it enables
// while-loop invariant hoisting, §4.2's anticipation discussion).
func BenchmarkAblationControlSpec(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  repro.Config
	}{
		{"on", repro.Config{Spec: repro.SpecProfile}},
		{"off", repro.Config{Spec: repro.SpecProfile, NoControlSpec: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportMetric(ablationCycles(b, "equake", c.cfg), "cycles")
		})
	}
}

// BenchmarkAblationLoadsOnly: register promotion without arithmetic PRE.
func BenchmarkAblationLoadsOnly(b *testing.B) {
	for _, c := range []struct {
		name string
		cfg  repro.Config
	}{
		{"witharith", repro.Config{Spec: repro.SpecProfile}},
		{"loadsonly", repro.Config{Spec: repro.SpecProfile, NoArith: true}},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportMetric(ablationCycles(b, "mcf", c.cfg), "cycles")
		})
	}
}

// BenchmarkAblationALATSize sweeps ALAT capacity: a small ALAT evicts
// entries and turns successful checks into failed ones.
func BenchmarkAblationALATSize(b *testing.B) {
	w, _ := workloads.ByName("equake")
	for _, size := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			cfg := repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs}
			cfg.Machine = machine.Defaults()
			cfg.Machine.ALATSize = size
			var failed int64
			for i := 0; i < b.N; i++ {
				c, err := repro.Compile(w.Src, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := c.Run(w.RefArgs)
				if err != nil {
					b.Fatal(err)
				}
				failed = res.Counters.FailedChecks
			}
			b.ReportMetric(float64(failed), "failedchecks")
		})
	}
}

// BenchmarkPipelineCompile measures compiler throughput (parse through
// codegen with profiling and full speculation) over the workload suite.
func BenchmarkPipelineCompile(b *testing.B) {
	b.ReportAllocs()
	ws := workloads.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ws[i%len(ws)]
		if _, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileProfile measures the allocation profile of the
// optimizing compile path (every workload, profile-guided speculation)
// and of the warm frontend-cache path (clone-dominated), and emits
// BENCH_compile.json so CI can guard against allocation regressions the
// same way BENCH_machine.json guards sweep speedups.
func BenchmarkCompileProfile(b *testing.B) {
	b.ReportAllocs()
	ws := workloads.All()
	// warm every cache first so steady-state compiles are measured
	for _, w := range ws {
		if _, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs}); err != nil {
			b.Fatal(err)
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ws[i%len(ws)]
		if _, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs}); err != nil {
			b.Fatal(err)
		}
	}
	compileNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	allocsPer := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)

	// warm-cache compile with optimization off: parse+lower is served by
	// a deep IR clone, so this approximates the clone cost itself
	w, _ := workloads.ByName("equake")
	cfg := repro.Config{OptimizeOff: true}
	if _, err := repro.Compile(w.Src, cfg); err != nil {
		b.Fatal(err)
	}
	const cloneIters = 64
	cloneStart := time.Now()
	for i := 0; i < cloneIters; i++ {
		if _, err := repro.Compile(w.Src, cfg); err != nil {
			b.Fatal(err)
		}
	}
	cloneNs := float64(time.Since(cloneStart).Nanoseconds()) / cloneIters

	b.ReportMetric(allocsPer, "allocs/compile")
	out := map[string]any{
		"benchmark":          "CompileProfile",
		"workloads":          len(ws),
		"allocs_per_compile": allocsPer,
		"ns_per_compile":     compileNs,
		"clone_ns":           cloneNs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_compile.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// sweepOnce compiles every workload once. sweepWorkers bounds how many
// workloads compile concurrently and is also handed to each compilation
// as its per-function worker bound (so 1 is the fully serial engine and
// 0 saturates every core at both tiers).
func sweepOnce(ws []workloads.Workload, sweepWorkers int) error {
	return par.Each(sweepWorkers, len(ws), func(i int) error {
		w := ws[i]
		cfg := repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs, Workers: sweepWorkers}
		_, err := repro.Compile(w.Src, cfg)
		return err
	})
}

// BenchmarkPipelineSerial is the Workers=1 oracle twin of
// BenchmarkPipelineParallel: the whole workload suite compiled strictly
// serially. The compiles/s gap between the two benchmarks is the
// wall-clock win of the parallel pipeline on this machine.
func BenchmarkPipelineSerial(b *testing.B) {
	ws := workloads.All()
	if err := sweepOnce(ws, 1); err != nil { // warm the frontend cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweepOnce(ws, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ws)*b.N)/b.Elapsed().Seconds(), "compiles/s")
}

// BenchmarkPipelineParallel compiles the whole workload suite with the
// parallel pipeline (workload-level fan-out plus per-function parallelism
// inside every compile) and reports compiles/s and the speedup over a
// serial pass measured on the same machine. On a single-core runner the
// speedup degenerates to ~1x by construction.
func BenchmarkPipelineParallel(b *testing.B) {
	ws := workloads.All()
	if err := sweepOnce(ws, 0); err != nil { // warm the frontend cache
		b.Fatal(err)
	}
	serialStart := time.Now()
	if err := sweepOnce(ws, 1); err != nil {
		b.Fatal(err)
	}
	serial := time.Since(serialStart)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweepOnce(ws, 0); err != nil {
			b.Fatal(err)
		}
	}
	perPass := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(len(ws)*b.N)/b.Elapsed().Seconds(), "compiles/s")
	if perPass > 0 {
		b.ReportMetric(serial.Seconds()/perPass.Seconds(), "speedup_vs_serial")
	}
}

// BenchmarkFrontendCache measures what the compilation cache is worth: a
// cold parse+lower per compile versus a cache hit handing out a deep
// clone.
func BenchmarkFrontendCache(b *testing.B) {
	w, _ := workloads.ByName("equake")
	cfg := repro.Config{OptimizeOff: true}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			repro.ResetFrontendCache()
			if _, err := repro.Compile(w.Src, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		if _, err := repro.Compile(w.Src, cfg); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := repro.Compile(w.Src, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVMExecution measures VM throughput on the optimized equake
// kernel.
func BenchmarkVMExecution(b *testing.B) {
	w, _ := workloads.ByName("equake")
	c, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(w.RefArgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScheduling measures the instruction-scheduling client
// (paper Fig. 3) under the pipelined timing model: latency-driven list
// scheduling overlaps load latency with independent work.
func BenchmarkAblationScheduling(b *testing.B) {
	w, _ := workloads.ByName("equake")
	pipelined := machine.Defaults()
	pipelined.Pipelined = true
	for _, c := range []struct {
		name string
		cfg  repro.Config
	}{
		{"unscheduled", repro.Config{Spec: repro.SpecProfile, Machine: pipelined}},
		{"scheduled", repro.Config{Spec: repro.SpecProfile, Schedule: true, Machine: pipelined}},
	} {
		b.Run(c.name, func(b *testing.B) {
			c.cfg.ProfileArgs = w.ProfileArgs
			var cycles int64
			for i := 0; i < b.N; i++ {
				comp, err := repro.Compile(w.Src, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := comp.Run(w.RefArgs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Counters.Cycles
			}
			b.ReportMetric(float64(cycles), "pipelined_cycles")
		})
	}
}

// BenchmarkInputSensitivity regenerates the input-sensitivity table
// (training input vs reference input as the profile source). Shape: the
// mismatched profile mis-speculates on the rare aliasing the training run
// never saw; the matched profile either avoids the promotion or never
// fails its checks — and outputs are identical either way.
func BenchmarkInputSensitivity(b *testing.B) {
	var rows []experiments.Sensitivity
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunSensitivity()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MismatchFailed), r.Name+"_mismatch_failed")
		b.ReportMetric(float64(r.MatchedFailed), r.Name+"_matched_failed")
	}
}
