package repro_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// TestTestdataPrograms compiles and runs every .mc file under testdata/
// in all speculation modes, checking VM output against the reference
// interpreter — the same contract the CLI tools rely on.
func TestTestdataPrograms(t *testing.T) {
	files, err := filepath.Glob("testdata/*.mc")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no testdata programs found")
	}
	args := map[string][]int64{
		"figure2.mc": {60},
		"smvp.mc":    {24, 2},
	}
	train := map[string][]int64{
		"figure2.mc": {0},
		"smvp.mc":    {12, 1},
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(file)
		runArgs := args[base]
		for _, mode := range []repro.SpecMode{repro.SpecOff, repro.SpecProfile, repro.SpecHeuristic} {
			t.Run(base+"/"+mode.String(), func(t *testing.T) {
				c, err := repro.Compile(string(src), repro.Config{Spec: mode, ProfileArgs: train[base]})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				want, err := c.RunReference(runArgs)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				got, err := c.Run(runArgs)
				if err != nil {
					t.Fatalf("vm: %v", err)
				}
				if got.Output != want.Output {
					t.Errorf("output mismatch: %q vs %q", got.Output, want.Output)
				}
			})
		}
	}
}
