package repro_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// The machine-engine benchmarks: direct re-execution vs record-and-
// replay for a RunSensitivity-style multi-config sweep. The tentpole
// claim is that an N-config sweep costs ~1 functional run + N cheap
// re-timings, so the "replay" variant (which pays for its recording
// inside the timed region every iteration) should still beat "direct"
// by a wide margin. BenchmarkMachineSweep writes the measured numbers
// to BENCH_machine.json so CI can archive the perf trajectory.

// sweepTarget compiles the profile-guided equake kernel once (compile
// time must not pollute the sweep timings).
func sweepTarget(b *testing.B) (*machine.Program, []int64) {
	b.Helper()
	w, ok := workloads.ByName("equake")
	if !ok {
		b.Fatal("equake not registered")
	}
	c, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
	if err != nil {
		b.Fatal(err)
	}
	return c.Code, w.RefArgs
}

// BenchmarkMachineSweep times one sweep grid per iteration, as direct
// re-execution and as record + replay, and emits BENCH_machine.json
// with the per-sweep costs and speedups. Two grids are measured:
// "serial" is the 12-config serial-model grid — the RunSensitivity
// shape, where replay takes the O(events) aggregate path — and "mixed"
// is the full 24-config MachineSweepConfigs grid whose pipelined half
// needs the per-instruction scoreboard walk.
func BenchmarkMachineSweep(b *testing.B) {
	code, args := sweepTarget(b)
	all := experiments.MachineSweepConfigs()
	var serial []machine.Config
	for _, cfg := range all {
		if !cfg.Pipelined {
			serial = append(serial, cfg)
		}
	}

	grids := []struct {
		name string
		cfgs []machine.Config
	}{{"serial", serial}, {"mixed", all}}
	speedups := map[string]float64{}
	out := map[string]any{
		"benchmark": "MachineSweep",
		"workload":  "equake",
	}
	for _, grid := range grids {
		var directNs, replayNs float64
		b.Run(grid.name+"/direct", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, cfg := range grid.cfgs {
					if _, err := machine.Run(code, args, cfg, nil); err != nil {
						b.Fatal(err)
					}
				}
			}
			directNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		b.Run(grid.name+"/replay", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// recording is paid inside the timed region: this is the
				// honest cold-sweep cost, not the cached steady state
				tr, err := machine.Record(code, args, machine.Config{})
				if err != nil {
					b.Fatal(err)
				}
				// the batched walk re-times every pipelined config of the
				// grid in one pass over the trace
				if _, err := machine.ReplayBatch(code, tr, grid.cfgs); err != nil {
					b.Fatal(err)
				}
			}
			replayNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		if directNs > 0 && replayNs > 0 {
			speedups[grid.name] = directNs / replayNs
		}
		out[grid.name] = map[string]any{
			"configs":             len(grid.cfgs),
			"direct_ns_per_sweep": directNs,
			"replay_ns_per_sweep": replayNs,
			"speedup":             speedups[grid.name],
		}
	}

	// the headline number is the RunSensitivity-shaped serial grid; the
	// mixed grid is reported alongside
	b.ReportMetric(speedups["serial"], "serial_sweep_speedup")
	b.ReportMetric(speedups["mixed"], "mixed_sweep_speedup")
	out["speedup"] = speedups["serial"]
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_machine.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEvaluate measures the public sweep API end to end (trace
// cache included): the first call records, the rest replay.
func BenchmarkEvaluate(b *testing.B) {
	w, ok := workloads.ByName("equake")
	if !ok {
		b.Fatal("equake not registered")
	}
	c, err := repro.Compile(w.Src, repro.Config{Spec: repro.SpecProfile, ProfileArgs: w.ProfileArgs})
	if err != nil {
		b.Fatal(err)
	}
	cfgs := experiments.MachineSweepConfigs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Evaluate(w.RefArgs, cfgs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReuseLimitSharded compares the serial Fig. 12 reuse walk
// against the sharded one.
func BenchmarkReuseLimitSharded(b *testing.B) {
	w, ok := workloads.ByName("equake")
	if !ok {
		b.Fatal("equake not registered")
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"sharded", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.ReuseLimitWorkers(w.Src, w.RefArgs, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
